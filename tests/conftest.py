"""Shared fixtures for the test-suite.

The fixtures provide the small, hand-analysable graphs used throughout the
tests, including the running example of the paper (Figure 1) whose nucleus
structure is worked out in the paper's Examples 1 and 2.
"""

from __future__ import annotations

import pytest
from hypothesis import settings as hypothesis_settings

from repro.graph.generators import clique_graph, planted_nucleus_graph
from repro.graph.probabilistic_graph import ProbabilisticGraph

# The tier-2 CI job selects this profile (--hypothesis-profile=ci) so a
# failing property test prints its @reproduce_failure blob — paste the blob
# onto the test to replay the exact falsifying example locally.
hypothesis_settings.register_profile("ci", print_blob=True)


@pytest.fixture
def empty_graph() -> ProbabilisticGraph:
    """A graph with no vertices and no edges."""
    return ProbabilisticGraph()


@pytest.fixture
def single_edge_graph() -> ProbabilisticGraph:
    """Two vertices joined by one edge of probability 0.5."""
    graph = ProbabilisticGraph()
    graph.add_edge("a", "b", 0.5)
    return graph


@pytest.fixture
def triangle_graph() -> ProbabilisticGraph:
    """A single triangle with heterogeneous probabilities."""
    graph = ProbabilisticGraph()
    graph.add_edge(0, 1, 0.9)
    graph.add_edge(1, 2, 0.8)
    graph.add_edge(0, 2, 0.7)
    return graph


@pytest.fixture
def four_clique_graph() -> ProbabilisticGraph:
    """A 4-clique whose edges all have probability 0.9."""
    return clique_graph(4, probability=0.9)


@pytest.fixture
def five_clique_graph() -> ProbabilisticGraph:
    """A deterministic 5-clique (all probabilities 1)."""
    return clique_graph(5, probability=1.0)


@pytest.fixture
def paper_figure1_graph() -> ProbabilisticGraph:
    """The probabilistic graph of Figure 1a of the paper.

    Vertices 1–7.  Edge probabilities are read off the figure: the 4-clique
    on {1, 2, 3, 5} has five certain edges and edge (3, 5) with probability
    0.5; the 4-clique on {1, 2, 3, 4} adds edges (3, 4) with 0.6, (2, 4) with
    0.7 and a certain edge (1, 4); the fringe vertices 6 and 7 hang off the
    core with probabilities 0.8 and 1.0 / 0.8.
    """
    graph = ProbabilisticGraph()
    edges = [
        (1, 2, 1.0),
        (1, 3, 1.0),
        (1, 5, 1.0),
        (2, 3, 1.0),
        (2, 5, 1.0),
        (3, 5, 0.5),
        (1, 4, 1.0),
        (2, 4, 0.7),
        (3, 4, 0.6),
        (4, 6, 0.8),
        (3, 6, 0.8),
        (1, 7, 0.8),
    ]
    for u, v, p in edges:
        graph.add_edge(u, v, p)
    return graph


@pytest.fixture
def paper_example1_nucleus_graph() -> ProbabilisticGraph:
    """The ℓ-(1, 0.42)-nucleus of Example 1 (Figure 2a): the 4-clique {1, 2, 3, 5}."""
    graph = ProbabilisticGraph()
    edges = [
        (1, 2, 1.0),
        (1, 3, 1.0),
        (1, 5, 1.0),
        (2, 3, 1.0),
        (2, 5, 1.0),
        (3, 5, 0.5),
    ]
    for u, v, p in edges:
        graph.add_edge(u, v, p)
    return graph


@pytest.fixture
def paper_example2_graph() -> ProbabilisticGraph:
    """The graph of Example 2 (Figure 3c): a 5-clique whose edges all have probability 0.6.

    Every triangle lies in exactly two 4-cliques with probability
    0.216³ ≈ 0.0101 ≥ 0.01, so the graph is an ℓ-(2, 0.01)-nucleus, but the
    only possible world that is a deterministic 2-nucleus is the complete
    clique, whose probability 0.6¹⁰ ≈ 0.006 falls below 0.01 — hence it is
    not a w-(2, 0.01)-nucleus.
    """
    graph = ProbabilisticGraph()
    import itertools

    for u, v in itertools.combinations([1, 2, 3, 4, 5], 2):
        graph.add_edge(u, v, 0.6)
    return graph


@pytest.fixture
def planted_graph() -> ProbabilisticGraph:
    """A small planted-community graph with known dense structure."""
    return planted_nucleus_graph(
        num_communities=3,
        community_size=6,
        intra_density=1.0,
        background_vertices=12,
        background_density=0.1,
        bridges_per_community=2,
        seed=42,
    )


@pytest.fixture
def disconnected_graph() -> ProbabilisticGraph:
    """Two disjoint triangles."""
    graph = ProbabilisticGraph()
    graph.add_edge(0, 1, 0.9)
    graph.add_edge(1, 2, 0.9)
    graph.add_edge(0, 2, 0.9)
    graph.add_edge(10, 11, 0.8)
    graph.add_edge(11, 12, 0.8)
    graph.add_edge(10, 12, 0.8)
    return graph


from graph_factories import (  # noqa: E402 (re-export for REPL convenience)
    PATHOLOGICAL_KINDS,
    bundled_graph,
    pathological_graph,
    small_er_graph,
)

# Re-exported so fixtures and ad-hoc REPL sessions can reach the shared
# builders through the conftest they already know; test modules import them
# from ``graph_factories`` directly (the module name ``conftest`` is claimed
# by whichever conftest.py pytest loads first when benchmarks/ is also on
# the path).
__all__ = [
    "PATHOLOGICAL_KINDS",
    "bundled_graph",
    "pathological_graph",
    "small_er_graph",
]
