"""Tests for the ``repro-experiments`` command-line runner.

The in-process surface (``repro.experiments.runner.main``) is exercised for
coverage; the end-to-end console behaviour — real interpreter, real argv,
real exit codes, artifacts on disk — is pinned by ``subprocess`` smoke tests
on top, mirroring ``tests/test_cli.py`` for ``repro-index``.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments.pipeline import ARTIFACT_FORMAT
from repro.experiments.registry import EXPERIMENT_NAMES
from repro.experiments.runner import EXPERIMENTS, main, run_experiment

REPO_ROOT = Path(__file__).resolve().parent.parent


def _run_cli(*args: str) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    return subprocess.run(
        [sys.executable, "-m", "repro.experiments", *args],
        capture_output=True,
        text=True,
        env=env,
        cwd=REPO_ROOT,
        timeout=300,
    )


class TestMainInProcess:
    def test_all_experiments_registered(self):
        assert set(EXPERIMENTS) == set(EXPERIMENT_NAMES)

    def test_run_experiment_unknown_name(self):
        with pytest.raises(KeyError):
            run_experiment("figure99")

    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        for name in EXPERIMENT_NAMES:
            assert name in out
        assert "Table 1" in out and "Figure 8" in out

    def test_run_cheap_experiment_legacy_invocation(self, capsys):
        # Seed-era invocation: no subcommand, bare experiment names.
        exit_code = main(["figure7", "--scale", "tiny"])
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "=== figure7 ===" in captured.out
        assert "avg PD" in captured.out

    def test_run_with_filter_and_markdown(self, capsys):
        exit_code = main(
            [
                "run", "table1", "--scale", "tiny",
                "--filter", "dataset=krogan", "--format", "markdown",
            ]
        )
        captured = capsys.readouterr()
        assert exit_code == 0
        assert "| Graph |" in captured.out
        assert "krogan" in captured.out
        assert "dblp" not in captured.out

    def test_unknown_experiment_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "figure99"])
        assert excinfo.value.code == 2

    def test_bad_filter_exits_2(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["run", "table1", "--filter", "nonsense"])
        assert excinfo.value.code == 2

    def test_artifact_written(self, tmp_path, capsys):
        exit_code = main(
            ["run", "figure7", "--scale", "tiny", "--out", str(tmp_path)]
        )
        capsys.readouterr()
        assert exit_code == 0
        payload = json.loads((tmp_path / "EXPERIMENTS_figure7.json").read_text())
        assert payload["format"] == ARTIFACT_FORMAT
        assert payload["num_rows"] >= 1


class TestConsoleSmoke:
    def test_list_subcommand(self):
        result = _run_cli("list")
        assert result.returncode == 0, result.stderr
        assert "ablation_sampling" in result.stdout

    def test_tiny_run_with_artifacts_and_jobs(self, tmp_path):
        result = _run_cli(
            "run", "table2", "--scale", "tiny", "--jobs", "2",
            "--filter", "dataset=krogan", "--out", str(tmp_path),
        )
        assert result.returncode == 0, result.stderr
        assert "=== table2 ===" in result.stdout
        payload = json.loads((tmp_path / "EXPERIMENTS_table2.json").read_text())
        assert payload["format"] == ARTIFACT_FORMAT
        assert payload["num_rows"] == 2  # krogan x theta {0.2, 0.4}
        assert payload["config"]["n_jobs"] == 2
        assert [cell["params"]["dataset"] for cell in payload["cells"]] == [
            "krogan", "krogan",
        ]

    def test_unknown_name_fails(self):
        result = _run_cli("run", "not_an_experiment")
        assert result.returncode == 2
        assert "valid names" in result.stderr
