"""Tests for the array-backed CSR graph engine (`repro.graph.csr`)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.deterministic.cliques import (
    common_neighbors_csr,
    enumerate_triangles,
    enumerate_triangles_csr,
    triangle_clique_index,
    triangle_clique_index_csr,
)
from repro.exceptions import EdgeNotFoundError, VertexNotFoundError
from repro.graph.csr import CSRProbabilisticGraph
from graph_factories import small_er_graph
from repro.graph.generators import (
    overlapping_community_graph,
    planted_nucleus_graph,
    power_law_cluster_graph,
)
from repro.graph.probabilistic_graph import ProbabilisticGraph


def _random_graphs():
    """A spread of randomized topologies used by the round-trip property tests."""
    for seed in (0, 1, 7, 23):
        yield small_er_graph(25, 0.3, seed=seed)
    for seed in (3, 11):
        yield power_law_cluster_graph(60, attachment=3, seed=seed)
    yield planted_nucleus_graph(
        num_communities=2, community_size=5, background_vertices=10,
        background_density=0.2, bridges_per_community=2, seed=5,
    )
    yield overlapping_community_graph(num_communities=3, community_size=6,
                                      overlap=2, seed=13)


class TestRoundTrip:
    @pytest.mark.parametrize("index", range(8))
    def test_dict_csr_round_trip_property(self, index):
        """to_csr().to_probabilistic() is the identity on randomized graphs."""
        graph = list(_random_graphs())[index]
        csr = graph.to_csr()
        assert csr.to_probabilistic() == graph
        assert ProbabilisticGraph.from_csr(csr) == graph

    def test_round_trip_preserves_probabilities_exactly(self):
        graph = ProbabilisticGraph()
        graph.add_edge(1, 2, 0.123456789012345)
        graph.add_edge(2, 3, 1.0)
        graph.add_edge(1, 3, 1e-9)
        restored = graph.to_csr().to_probabilistic()
        for u, v, p in graph.edges():
            assert restored.edge_probability(u, v) == p

    def test_round_trip_keeps_isolated_vertices(self):
        graph = ProbabilisticGraph()
        graph.add_vertex("lonely")
        graph.add_edge("a", "b", 0.5)
        restored = graph.to_csr().to_probabilistic()
        assert restored == graph
        assert restored.has_vertex("lonely")

    def test_empty_graph(self, empty_graph):
        csr = empty_graph.to_csr()
        assert csr.num_vertices == 0
        assert csr.num_edges == 0
        assert csr.to_probabilistic() == empty_graph

    def test_string_labels(self):
        graph = ProbabilisticGraph([("x", "y", 0.4), ("y", "z", 0.9), ("x", "z", 0.6)])
        csr = graph.to_csr()
        assert csr.vertex_labels == ["x", "y", "z"]
        assert csr.to_probabilistic() == graph


class TestCSRStructure:
    def test_invariants(self, paper_figure1_graph):
        csr = paper_figure1_graph.to_csr()
        assert csr.indptr[0] == 0
        assert csr.indptr[-1] == csr.indices.size
        assert np.all(np.diff(csr.indptr) >= 0)
        assert csr.indices.size == 2 * paper_figure1_graph.num_edges
        for i in range(csr.num_vertices):
            row = csr.neighbor_ids(i)
            assert np.all(np.diff(row) > 0), "rows must be strictly sorted"

    def test_degree_and_probability_match_dict(self, paper_figure1_graph):
        csr = paper_figure1_graph.to_csr()
        for label in paper_figure1_graph.vertices():
            assert csr.degree(csr.index_of(label)) == paper_figure1_graph.degree(label)
        for u, v, p in paper_figure1_graph.edges():
            assert csr.edge_probability(u, v) == p
            assert csr.edge_probability(v, u) == p
            assert csr.has_edge(u, v)

    def test_edges_iteration_matches(self, planted_graph):
        csr = planted_graph.to_csr()
        assert sorted(csr.edges()) == sorted(planted_graph.edges())

    def test_relabeling_is_canonical_sorted(self):
        graph = ProbabilisticGraph([(9, 2, 0.5), (2, 5, 0.5), (9, 5, 0.5)])
        csr = graph.to_csr()
        assert csr.vertex_labels == [2, 5, 9]
        assert csr.label_of(0) == 2
        assert csr.index_of(9) == 2

    def test_errors(self, single_edge_graph):
        csr = single_edge_graph.to_csr()
        with pytest.raises(VertexNotFoundError):
            csr.index_of("missing")
        with pytest.raises(VertexNotFoundError):
            csr.label_of(99)
        with pytest.raises(EdgeNotFoundError):
            csr.edge_probability("a", "a")
        assert not csr.has_edge("a", "missing")
        assert "a" in csr and "missing" not in csr
        assert len(csr) == 2

    def test_constructor_validates_arrays(self):
        with pytest.raises(ValueError):
            CSRProbabilisticGraph(
                np.array([0, 1]), np.array([0, 1]), np.array([0.5]), ["a"]
            )
        with pytest.raises(ValueError):
            CSRProbabilisticGraph(
                np.array([0, 2]), np.array([1]), np.array([0.5]), ["a"]
            )


class TestCSRCliques:
    @pytest.mark.parametrize("index", range(8))
    def test_triangle_enumeration_matches_dict(self, index):
        graph = list(_random_graphs())[index]
        csr = graph.to_csr()
        labels = csr.vertex_labels
        from_csr = {
            tuple(sorted((labels[u], labels[v], labels[w])))
            for u, v, w in enumerate_triangles_csr(csr)
        }
        from_dict = set(enumerate_triangles(graph))
        assert from_csr == from_dict

    def test_clique_index_matches_dict(self, paper_figure1_graph):
        csr = paper_figure1_graph.to_csr()
        labels = csr.vertex_labels
        by_triangle_csr, by_clique_csr = triangle_clique_index_csr(csr)
        by_triangle, by_clique = triangle_clique_index(paper_figure1_graph)

        def relabel(ids):
            return tuple(labels[i] for i in ids)

        assert {relabel(t) for t in by_triangle_csr} == set(by_triangle)
        for triangle, cliques in by_triangle_csr.items():
            assert sorted(relabel(c) for c in cliques) == sorted(
                by_triangle[relabel(triangle)]
            )
        assert {relabel(c) for c in by_clique_csr} == set(by_clique)

    def test_common_neighbors_matches_dict(self, four_clique_graph):
        csr = four_clique_graph.to_csr()
        common = common_neighbors_csr(csr, 0, 1, 2)
        assert common.tolist() == [3]
        expected = four_clique_graph.common_neighbors(0, 1, 2)
        assert {csr.vertex_labels[z] for z in common.tolist()} == expected

    def test_triangle_free_graph_has_no_triangles(self):
        path = ProbabilisticGraph([(0, 1, 0.9), (1, 2, 0.9), (2, 3, 0.9)])
        assert list(enumerate_triangles_csr(path.to_csr())) == []
