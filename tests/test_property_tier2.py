"""Tier-2 property tests: CSR graph invariants and peel-engine invariants.

Hypothesis generates arbitrary small probabilistic graphs (not just the
seeded ER topologies of the tier-1 suite) and checks structural invariants
that must hold for *every* input:

* the CSR compilation round-trips the edge set losslessly (edge arrays,
  degree sums) and agrees with a brute-force triangle enumeration;
* the exact-DP peel's ν-scores are bounded by 4-clique support, flag
  exactly the sub-θ triangles with ``-1``, and are monotone non-increasing
  in θ;
* a random single-edge update maintained incrementally is bit-identical to
  rebuilding the index from scratch (the differential-parity property, in
  miniature — the wide chained-batch version lives in
  ``tests/test_incremental_sweep.py``).

Run explicitly with ``pytest -m tier2``; the default marker expression
(``-m "not tier2"``, see ``pyproject.toml``) keeps these out of tier 1.
On failure hypothesis prints the falsifying example and a ``@reproduce_failure``
/ ``@seed`` line — paste it onto the failing test to replay locally.
"""

from __future__ import annotations

import itertools

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.core.approximations import DynamicProgrammingEstimator
from repro.core.local import local_nucleus_decomposition
from repro.deterministic.cliques import (
    enumerate_triangles_csr,
    four_cliques_containing_triangle,
)
from repro.graph.probabilistic_graph import ProbabilisticGraph
from repro.index import EdgeUpdate, apply_updates, build_local_index

pytestmark = pytest.mark.tier2

COMMON_SETTINGS = dict(
    deadline=None, suppress_health_check=[HealthCheck.too_slow]
)


@st.composite
def probabilistic_graphs(draw, min_vertices=3, max_vertices=9):
    """An arbitrary small probabilistic graph (any topology, any weights)."""
    n = draw(st.integers(min_vertices, max_vertices))
    pairs = list(itertools.combinations(range(n), 2))
    chosen = draw(st.lists(st.sampled_from(pairs), unique=True, min_size=1))
    probabilities = draw(
        st.lists(
            st.floats(0.05, 1.0, allow_nan=False),
            min_size=len(chosen),
            max_size=len(chosen),
        )
    )
    graph = ProbabilisticGraph()
    for vertex in range(n):
        graph.add_vertex(vertex)
    for (u, v), p in zip(chosen, probabilities):
        graph.add_edge(u, v, p)
    return graph


def _edge_table(graph) -> dict:
    return {frozenset((u, v)): p for u, v, p in graph.edges()}


# --------------------------------------------------------------------------- #
# CSR graph invariants
# --------------------------------------------------------------------------- #
class TestCSRInvariants:
    @settings(max_examples=80, **COMMON_SETTINGS)
    @given(graph=probabilistic_graphs())
    def test_edge_arrays_round_trip(self, graph):
        """to_csr() preserves the edge set, weights and vertex set exactly."""
        csr = graph.to_csr()
        edge_u, edge_v, edge_prob = csr.undirected_edge_arrays()
        expected = _edge_table(graph)
        assert edge_u.shape == edge_v.shape == edge_prob.shape
        assert edge_u.size == len(expected) == graph.num_edges
        labels = csr.vertex_labels
        rebuilt = {
            frozenset((labels[i], labels[j])): p
            for i, j, p in zip(edge_u.tolist(), edge_v.tolist(), edge_prob.tolist())
        }
        assert rebuilt == expected
        assert set(csr.to_probabilistic().vertices()) == set(graph.vertices())

    @settings(max_examples=80, **COMMON_SETTINGS)
    @given(graph=probabilistic_graphs())
    def test_degree_sums(self, graph):
        """indptr encodes exactly the undirected degrees; they sum to 2|E|."""
        csr = graph.to_csr()
        degrees = np.diff(csr.indptr)
        assert int(degrees.sum()) == 2 * graph.num_edges
        by_vertex = {label: 0 for label in graph.vertices()}
        for u, v, _ in graph.edges():
            by_vertex[u] += 1
            by_vertex[v] += 1
        for i, label in enumerate(csr.vertex_labels):
            assert int(degrees[i]) == by_vertex[label]

    @settings(max_examples=60, **COMMON_SETTINGS)
    @given(graph=probabilistic_graphs())
    def test_triangle_count_matches_brute_force(self, graph):
        csr = graph.to_csr()
        edges = set(_edge_table(graph))
        brute = sum(
            1
            for a, b, c in itertools.combinations(sorted(graph.vertices()), 3)
            if {frozenset((a, b)), frozenset((a, c)), frozenset((b, c))} <= edges
        )
        assert len(list(enumerate_triangles_csr(csr))) == brute


# --------------------------------------------------------------------------- #
# peel-engine invariants (exact DP oracle)
# --------------------------------------------------------------------------- #
class TestPeelInvariants:
    @settings(max_examples=30, **COMMON_SETTINGS)
    @given(graph=probabilistic_graphs(max_vertices=8), theta=st.floats(0.01, 0.9))
    def test_scores_bounded_by_support_and_theta(self, graph, theta):
        """-1 flags exactly the sub-θ triangles; κ never exceeds 4-clique support."""
        result = local_nucleus_decomposition(
            graph, theta, estimator=DynamicProgrammingEstimator(), backend="csr"
        )
        edges = _edge_table(graph)
        for triangle, score in result.scores.items():
            a, b, c = triangle
            probability = (
                edges[frozenset((a, b))]
                * edges[frozenset((a, c))]
                * edges[frozenset((b, c))]
            )
            support = len(four_cliques_containing_triangle(graph, triangle))
            if probability < theta:
                assert score == -1, (triangle, probability, theta)
            else:
                assert 0 <= score <= support, (triangle, score, support)

    @settings(max_examples=25, **COMMON_SETTINGS)
    @given(
        graph=probabilistic_graphs(max_vertices=8),
        thetas=st.tuples(st.floats(0.01, 0.9), st.floats(0.01, 0.9)),
    )
    def test_scores_monotone_in_theta(self, graph, thetas):
        """Raising θ can only lower a triangle's ν-score (exact oracle)."""
        low, high = sorted(thetas)
        loose = local_nucleus_decomposition(
            graph, low, estimator=DynamicProgrammingEstimator(), backend="csr"
        )
        strict = local_nucleus_decomposition(
            graph, high, estimator=DynamicProgrammingEstimator(), backend="csr"
        )
        assert set(loose.scores) == set(strict.scores)
        for triangle, score in strict.scores.items():
            assert score <= loose.scores[triangle], (triangle, low, high)


# --------------------------------------------------------------------------- #
# differential parity of a random single-edge update
# --------------------------------------------------------------------------- #
class TestIncrementalProperty:
    @settings(max_examples=30, **COMMON_SETTINGS)
    @given(
        graph=probabilistic_graphs(min_vertices=4, max_vertices=8),
        choice=st.integers(0, 2**30),
        probability=st.floats(0.05, 1.0, allow_nan=False),
    )
    def test_single_update_matches_rebuild(self, graph, choice, probability):
        edges = {tuple(sorted((u, v))): p for u, v, p in graph.edges()}
        labels = sorted(graph.vertices())
        all_pairs = list(itertools.combinations(labels, 2))
        missing = [pair for pair in all_pairs if pair not in edges]
        ops = ["change", "delete"] + (["insert"] if missing else [])
        op = ops[choice % len(ops)]
        if op == "insert":
            u, v = missing[choice % len(missing)]
            update = EdgeUpdate("insert", u, v, probability)
            edges[(u, v)] = probability
        else:
            u, v = list(edges)[choice % len(edges)]
            if op == "delete":
                update = EdgeUpdate("delete", u, v)
                del edges[(u, v)]
            else:
                update = EdgeUpdate("change", u, v, probability)
                edges[(u, v)] = probability

        index = build_local_index(graph, 0.05, backend="csr")
        updated = apply_updates(index, [update])

        reference_graph = ProbabilisticGraph([(u, v, p) for (u, v), p in edges.items()])
        for label in labels:
            reference_graph.add_vertex(label)
        rebuilt = build_local_index(reference_graph, 0.05, backend="csr")

        assert updated.fingerprint == rebuilt.fingerprint, update
        for name, want in rebuilt.arrays.items():
            assert updated.arrays[name].tobytes() == want.tobytes(), (name, update)
        assert updated.revision == 1
