"""Tests for triangle / 4-clique enumeration, supports, and connectivity."""

from __future__ import annotations

import itertools
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deterministic.cliques import (
    canonical_four_clique,
    canonical_triangle,
    count_triangles,
    enumerate_four_cliques,
    enumerate_k_cliques,
    enumerate_triangles,
    four_cliques_containing_triangle,
    triangle_clique_index,
    triangle_connected_components,
    triangle_supports,
    triangles_of_clique,
)
from graph_factories import small_er_graph
from repro.graph.generators import clique_graph
from repro.graph.probabilistic_graph import ProbabilisticGraph


def _binomial(n: int, k: int) -> int:
    import math

    return math.comb(n, k)


class TestCanonicalisation:
    def test_triangle_is_sorted(self):
        assert canonical_triangle(3, 1, 2) == (1, 2, 3)

    def test_four_clique_is_sorted(self):
        assert canonical_four_clique(4, 3, 2, 1) == (1, 2, 3, 4)

    def test_mixed_types_are_stable(self):
        assert canonical_triangle("b", 1, "a") == canonical_triangle(1, "a", "b")

    def test_triangles_of_clique(self):
        triangles = triangles_of_clique((1, 2, 3, 4))
        assert len(triangles) == 4
        assert (1, 2, 3) in triangles and (2, 3, 4) in triangles


class TestEnumeration:
    def test_triangle_count_in_clique(self):
        for n in range(3, 8):
            graph = clique_graph(n)
            assert count_triangles(graph) == _binomial(n, 3)

    def test_four_clique_count_in_clique(self):
        for n in range(4, 8):
            graph = clique_graph(n)
            assert len(list(enumerate_four_cliques(graph))) == _binomial(n, 4)

    def test_no_triangles_in_a_path(self):
        graph = ProbabilisticGraph([(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
        assert count_triangles(graph) == 0
        assert list(enumerate_four_cliques(graph)) == []

    def test_triangles_are_unique(self, planted_graph):
        triangles = list(enumerate_triangles(planted_graph))
        assert len(triangles) == len(set(triangles))

    def test_four_cliques_are_unique(self, planted_graph):
        cliques = list(enumerate_four_cliques(planted_graph))
        assert len(cliques) == len(set(cliques))

    def test_matches_networkx_triangle_count(self, planted_graph):
        import networkx as nx

        nxg = planted_graph.to_networkx()
        expected = sum(nx.triangles(nxg).values()) // 3
        assert count_triangles(planted_graph) == expected

    def test_k_clique_enumeration_matches_combinations(self):
        graph = clique_graph(6)
        for k in range(1, 7):
            cliques = list(enumerate_k_cliques(graph, k))
            assert len(cliques) == _binomial(6, k)
            assert len(set(cliques)) == len(cliques)

    def test_k_clique_enumeration_edge_cases(self, triangle_graph):
        assert list(enumerate_k_cliques(triangle_graph, 0)) == []
        assert len(list(enumerate_k_cliques(triangle_graph, 1))) == 3
        assert len(list(enumerate_k_cliques(triangle_graph, 3))) == 1
        assert list(enumerate_k_cliques(triangle_graph, 4)) == []


class TestSupports:
    def test_supports_in_five_clique(self, five_clique_graph):
        supports = triangle_supports(five_clique_graph)
        assert len(supports) == _binomial(5, 3)
        assert set(supports.values()) == {2}

    def test_supports_of_isolated_triangle(self, triangle_graph):
        supports = triangle_supports(triangle_graph)
        assert supports == {(0, 1, 2): 0}

    def test_four_cliques_containing_triangle(self, five_clique_graph):
        cliques = four_cliques_containing_triangle(five_clique_graph, (0, 1, 2))
        assert len(cliques) == 2
        assert all((0, 1, 2) != clique for clique in cliques)

    def test_triangle_clique_index_consistency(self, planted_graph):
        by_triangle, by_clique = triangle_clique_index(planted_graph)
        # every triangle referenced by a clique appears in the triangle map
        for clique, members in by_clique.items():
            assert len(members) == 4
            for triangle in members:
                assert clique in by_triangle[triangle]
        # supports computed both ways agree
        supports = triangle_supports(planted_graph)
        for triangle, cliques in by_triangle.items():
            assert supports[triangle] == len(cliques)


class TestTriangleConnectivity:
    def test_single_clique_is_one_component(self, five_clique_graph):
        by_triangle, _ = triangle_clique_index(five_clique_graph)
        components = triangle_connected_components(by_triangle.keys(), by_triangle)
        assert len(components) == 1

    def test_disjoint_cliques_are_separate_components(self):
        graph = ProbabilisticGraph()
        for offset in (0, 10):
            for u, v in itertools.combinations(range(offset, offset + 4), 2):
                graph.add_edge(u, v, 1.0)
        by_triangle, _ = triangle_clique_index(graph)
        components = triangle_connected_components(by_triangle.keys(), by_triangle)
        assert len(components) == 2

    def test_triangles_without_cliques_are_isolated(self, triangle_graph):
        by_triangle, _ = triangle_clique_index(triangle_graph)
        components = triangle_connected_components(by_triangle.keys(), by_triangle)
        assert components == [{(0, 1, 2)}]

    def test_allowed_cliques_restriction(self, five_clique_graph):
        by_triangle, by_clique = triangle_clique_index(five_clique_graph)
        components = triangle_connected_components(
            by_triangle.keys(), by_triangle, allowed_cliques=set()
        )
        # with no connector cliques every triangle is its own component
        assert len(components) == len(by_triangle)


class TestPropertyBased:
    @given(seed=st.integers(0, 100), density=st.floats(0.1, 0.6))
    @settings(max_examples=25, deadline=None)
    def test_every_four_clique_contains_four_supported_triangles(self, seed, density):
        graph = small_er_graph(12, density, seed=seed)
        supports = triangle_supports(graph)
        for clique in enumerate_four_cliques(graph):
            for triangle in triangles_of_clique(clique):
                assert supports[triangle] >= 1

    @given(seed=st.integers(0, 100))
    @settings(max_examples=25, deadline=None)
    def test_support_sum_is_four_times_clique_count(self, seed):
        graph = small_er_graph(12, 0.4, seed=seed)
        supports = triangle_supports(graph)
        cliques = list(enumerate_four_cliques(graph))
        assert sum(supports.values()) == 4 * len(cliques)
