"""Differential-parity tests for incremental index maintenance.

The contract under test (``repro.index.incremental``): applying a batch of
edge updates to a :class:`~repro.index.NucleusIndex` yields arrays
**bit-identical** to rebuilding the index from scratch over the updated
graph, while the lineage header fields (``base_fingerprint`` / ``revision``
/ ``update_log_digest``) version the history for query-engine caches.  The
reference oracle throughout is a plain ``build_local_index`` over an
independently re-assembled graph — the dict-of-edges bookkeeping is the
parity oracle, the incremental path is the implementation under test.

The randomized wide sweep (hundreds of batches, all modes) lives in
``tests/test_incremental_sweep.py`` under the ``tier2`` marker; this module
is the fast tier-1 pin of every code path and failure mode.
"""

from __future__ import annotations

import numpy as np
import pytest
from graph_factories import pathological_graph, small_er_graph

from repro.core.approximations import PoissonEstimator
from repro.exceptions import (
    EdgeNotFoundError,
    IndexCompatibilityError,
    IndexFormatError,
    InvalidParameterError,
    VertexNotFoundError,
)
from repro.graph.probabilistic_graph import ProbabilisticGraph
from repro.index import (
    EdgeUpdate,
    apply_updates,
    build_global_index,
    build_local_index,
    build_weak_index,
    load_index,
    versioned_fingerprint,
)
from repro.index.incremental import chain_update_digest
from repro.index.nucleus_index import FORMAT_VERSION, NucleusIndex
from repro.query import NucleusQueryEngine

THETA = 0.05


# --------------------------------------------------------------------------- #
# helpers: dict-of-edges bookkeeping as the parity oracle
# --------------------------------------------------------------------------- #
def edge_dict(graph) -> dict:
    return {tuple(sorted((u, v), key=repr)): p for u, v, p in graph.edges()}


def apply_to_edges(edges: dict, updates) -> dict:
    """Replay a batch on the plain edge dictionary (the reference model)."""
    edges = dict(edges)
    for update in updates:
        key = tuple(sorted((update.u, update.v), key=repr))
        if update.op == "insert":
            assert key not in edges
            edges[key] = update.probability
        elif update.op == "delete":
            del edges[key]
        else:
            assert key in edges
            edges[key] = update.probability
    return edges


def graph_from(edges: dict, labels) -> ProbabilisticGraph:
    graph = ProbabilisticGraph([(u, v, p) for (u, v), p in edges.items()])
    for label in labels:  # apply_updates keeps the vertex set fixed
        graph.add_vertex(label)
    return graph


def assert_same_content(actual: NucleusIndex, expected: NucleusIndex) -> None:
    """Bit-for-bit array equality plus matching content fingerprint."""
    assert actual.fingerprint == expected.fingerprint
    assert set(actual.arrays) == set(expected.arrays)
    for name, want in expected.arrays.items():
        got = actual.arrays[name]
        assert got.dtype == want.dtype, name
        assert got.shape == want.shape, name
        assert got.tobytes() == want.tobytes(), name


def checked_apply(index, graph_labels, edges, updates, theta=THETA):
    """apply_updates plus the from-scratch parity assertion; returns both."""
    new_index = apply_updates(index, updates)
    new_edges = apply_to_edges(edges, updates)
    rebuilt = build_local_index(graph_from(new_edges, graph_labels), theta, backend="csr")
    assert_same_content(new_index, rebuilt)
    return new_index, new_edges


# --------------------------------------------------------------------------- #
# batch validation
# --------------------------------------------------------------------------- #
class TestBatchValidation:
    @pytest.fixture
    def index(self, triangle_graph):
        return build_local_index(triangle_graph, THETA, backend="csr")

    def test_unknown_op_rejected(self, index):
        with pytest.raises(InvalidParameterError, match="unknown update op"):
            apply_updates(index, [EdgeUpdate("upsert", 0, 1, 0.5)])

    def test_self_loop_rejected(self, index):
        with pytest.raises(InvalidParameterError, match="self-loop"):
            apply_updates(index, [EdgeUpdate("change", 1, 1, 0.5)])

    def test_unknown_vertex_rejected(self, index):
        with pytest.raises(VertexNotFoundError):
            apply_updates(index, [EdgeUpdate("insert", 0, 99, 0.5)])

    def test_duplicate_edge_in_batch_rejected(self, index):
        # The second record targets the same edge in the opposite
        # orientation; canonicalisation must still catch the collision.
        batch = [EdgeUpdate("change", 0, 1, 0.4), EdgeUpdate("change", 1, 0, 0.6)]
        with pytest.raises(InvalidParameterError, match="more than once"):
            apply_updates(index, batch)

    def test_delete_with_probability_rejected(self, index):
        with pytest.raises(InvalidParameterError, match="must not carry"):
            apply_updates(index, [EdgeUpdate("delete", 0, 1, 0.5)])

    def test_delete_missing_edge_rejected(self, triangle_graph):
        graph = triangle_graph
        graph.add_vertex(3)
        index = build_local_index(graph, THETA, backend="csr")
        with pytest.raises(EdgeNotFoundError):
            apply_updates(index, [EdgeUpdate("delete", 0, 3)])

    def test_change_missing_edge_rejected(self, triangle_graph):
        graph = triangle_graph
        graph.add_vertex(3)
        index = build_local_index(graph, THETA, backend="csr")
        with pytest.raises(EdgeNotFoundError):
            apply_updates(index, [EdgeUpdate("change", 0, 3, 0.5)])

    def test_insert_existing_edge_rejected(self, index):
        with pytest.raises(InvalidParameterError, match="already exists"):
            apply_updates(index, [EdgeUpdate("insert", 0, 1, 0.5)])

    @pytest.mark.parametrize("probability", [0.0, -0.5, 1.5, None, True, "0.5"])
    def test_bad_probabilities_rejected(self, index, probability):
        with pytest.raises(InvalidParameterError, match="probability"):
            apply_updates(index, [EdgeUpdate("change", 0, 1, probability)])

    def test_failed_batch_leaves_index_usable(self, index):
        before = index.cache_key
        with pytest.raises(InvalidParameterError):
            apply_updates(index, [EdgeUpdate("change", 0, 1, 2.0)])
        assert index.cache_key == before
        assert index.revision == 0

    def test_plain_tuples_accepted(self, triangle_graph, index):
        updated, _ = checked_apply(
            index, triangle_graph.vertices(), edge_dict(triangle_graph),
            [EdgeUpdate("change", 0, 1, 0.75)],
        )
        via_tuple = apply_updates(index, [("change", 0, 1, 0.75)])
        assert_same_content(via_tuple, updated)
        assert via_tuple.cache_key == updated.cache_key


# --------------------------------------------------------------------------- #
# differential parity of the incremental path
# --------------------------------------------------------------------------- #
class TestIncrementalParity:
    def test_mixed_batch_on_paper_graph(self, paper_figure1_graph):
        graph = paper_figure1_graph
        edges = edge_dict(graph)
        index = build_local_index(graph, THETA, backend="csr")
        batch = [
            EdgeUpdate("insert", 5, 6, 0.9),
            EdgeUpdate("delete", 1, 7),
            EdgeUpdate("change", 3, 5, 0.95),
        ]
        updated, _ = checked_apply(index, graph.vertices(), edges, batch)
        assert updated.revision == 1
        assert updated.base_fingerprint == index.fingerprint

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_chained_batches_on_er_graphs(self, seed):
        graph = small_er_graph(16, 0.4, seed=seed, probabilities=(0.3, 1.0))
        labels = graph.vertices()
        edges = edge_dict(graph)
        index = build_local_index(graph, THETA, backend="csr")
        base_fingerprint = index.fingerprint
        batches = [
            [EdgeUpdate("change", *list(edges)[seed], 0.42)],
            [
                EdgeUpdate("delete", *list(edges)[2 * seed + 1]),
                EdgeUpdate("change", *list(edges)[2 * seed + 3], 0.9),
            ],
            [EdgeUpdate("insert", *_missing_pair(edges, labels), 0.8)],
        ]
        for revision, batch in enumerate(batches, start=1):
            index, edges = checked_apply(index, labels, edges, batch)
            assert index.revision == revision
            assert index.base_fingerprint == base_fingerprint

    def test_pathological_shared_edge_graph(self):
        graph = pathological_graph("two_triangles_shared_edge")
        edges = edge_dict(graph)
        index = build_local_index(graph, THETA, backend="csr")
        # Deleting the shared edge kills both triangles at once.
        index, edges = checked_apply(index, graph.vertices(), edges, [EdgeUpdate("delete", 1, 2)])
        # Re-inserting it resurrects them.
        checked_apply(index, graph.vertices(), edges, [EdgeUpdate("insert", 1, 2, 0.8)])

    def test_empty_batch_is_identity(self, triangle_graph):
        index = build_local_index(triangle_graph, THETA, backend="csr")
        assert apply_updates(index, []) is index
        assert index.revision == 0

    def test_updates_via_method(self, triangle_graph):
        index = build_local_index(triangle_graph, THETA, backend="csr")
        via_method = index.apply_updates([EdgeUpdate("change", 0, 1, 0.5)])
        via_function = apply_updates(index, [EdgeUpdate("change", 0, 1, 0.5)])
        assert_same_content(via_method, via_function)
        assert via_method.cache_key == via_function.cache_key


def _missing_pair(edges: dict, labels):
    for u in labels:
        for v in labels:
            if repr(u) < repr(v) and (u, v) not in edges:
                return u, v
    raise AssertionError("graph is complete")


# --------------------------------------------------------------------------- #
# the two probability-only fast paths
# --------------------------------------------------------------------------- #
class TestProbabilityOnlyFastPaths:
    def test_reprice_snapshot_path_shares_structural_arrays(self, monkeypatch):
        """A re-price that keeps every κ-score hits the snapshot fast path."""
        import repro.index.incremental as incremental

        calls = []
        original = incremental._reprice_snapshot

        def spy(*args, **kwargs):
            calls.append(1)
            return original(*args, **kwargs)

        monkeypatch.setattr(incremental, "_reprice_snapshot", spy)
        # Two triangles, no 4-cliques: every κ-score is 0 as long as the
        # triangle probabilities stay above theta, so a mild re-price cannot
        # change any score.
        graph = pathological_graph("two_triangles_shared_edge")
        edges = edge_dict(graph)
        index = build_local_index(graph, THETA, backend="csr")
        index = apply_updates(index, [EdgeUpdate("change", 0, 1, 0.85)])  # warm state
        updated, _ = checked_apply(
            index, graph.vertices(), apply_to_edges(edges, [EdgeUpdate("change", 0, 1, 0.85)]),
            [EdgeUpdate("change", 0, 1, 0.8)],
        )
        assert calls, "expected the re-price fast path to run"
        # Structure-describing arrays are carried over by reference.
        assert updated.arrays["triangles"] is index.arrays["triangles"]
        assert updated.arrays["comp_triangles"] is index.arrays["comp_triangles"]

    def test_score_changing_reprice_takes_rebuild_path(self, monkeypatch):
        """A drastic re-price that drops κ-scores must re-assemble the snapshot."""
        import repro.index.incremental as incremental

        monkeypatch.setattr(
            incremental,
            "_reprice_snapshot",
            lambda *a, **k: pytest.fail("snapshot fast path taken for changed scores"),
        )
        graph = pathological_graph("certain_five_clique")
        edges = edge_dict(graph)
        index = build_local_index(graph, 0.5, backend="csr")
        assert max(index.levels) >= 1
        # 1.0 -> 0.05 collapses every clique probability through theta=0.5.
        checked_apply(
            index, graph.vertices(), edges, [EdgeUpdate("change", 0, 1, 0.05)], theta=0.5
        )


# --------------------------------------------------------------------------- #
# update lineage: fingerprints, digests, cache keys
# --------------------------------------------------------------------------- #
class TestLineage:
    def test_versioned_fingerprint_is_deterministic_and_injective_in_inputs(self):
        key = versioned_fingerprint("base", 1, "digest")
        assert key == versioned_fingerprint("base", 1, "digest")
        assert key != versioned_fingerprint("base", 2, "digest")
        assert key != versioned_fingerprint("base", 1, "other")
        assert key != versioned_fingerprint("other", 1, "digest")

    def test_chain_digest_is_order_insensitive_within_a_batch(self):
        a = EdgeUpdate("change", 0, 1, 0.5)
        b = EdgeUpdate("delete", 2, 3)
        assert chain_update_digest("", [a, b]) == chain_update_digest("", [b, a])
        assert chain_update_digest("", [a, b]) != chain_update_digest("", [a])

    def test_chain_digest_is_order_sensitive_across_batches(self):
        a = EdgeUpdate("change", 0, 1, 0.5)
        b = EdgeUpdate("delete", 2, 3)
        ab = chain_update_digest(chain_update_digest("", [a]), [b])
        ba = chain_update_digest(chain_update_digest("", [b]), [a])
        assert ab != ba

    def test_cache_key_tracks_revisions(self, paper_figure1_graph):
        graph = paper_figure1_graph
        index = build_local_index(graph, THETA, backend="csr")
        assert index.cache_key == index.fingerprint
        first = apply_updates(index, [EdgeUpdate("change", 3, 5, 0.6)])
        assert first.revision == 1
        assert first.cache_key != index.cache_key
        second = apply_updates(first, [EdgeUpdate("change", 3, 5, 0.5)])
        assert second.revision == 2
        assert len({index.cache_key, first.cache_key, second.cache_key}) == 3

    def test_equal_histories_share_cache_keys(self, paper_figure1_graph):
        graph = paper_figure1_graph
        batch = [EdgeUpdate("change", 3, 5, 0.6), EdgeUpdate("delete", 1, 7)]
        one = apply_updates(build_local_index(graph, THETA, backend="csr"), batch)
        # The same batch given in reversed record order and flipped edge
        # orientation is canonically the same history.
        flipped = [EdgeUpdate("delete", 7, 1), EdgeUpdate("change", 5, 3, 0.6)]
        two = apply_updates(build_local_index(graph, THETA, backend="csr"), flipped)
        assert one.cache_key == two.cache_key
        assert one.update_log_digest == two.update_log_digest

    def test_round_trip_back_to_original_graph_keeps_distinct_key(self, triangle_graph):
        """Undoing an update restores the content fingerprint, not the lineage."""
        index = build_local_index(triangle_graph, THETA, backend="csr")
        there = apply_updates(index, [EdgeUpdate("change", 0, 1, 0.5)])
        back = apply_updates(there, [EdgeUpdate("change", 0, 1, 0.9)])
        assert back.fingerprint == index.fingerprint  # same graph again
        assert back.revision == 2
        assert back.cache_key != index.cache_key  # different history


# --------------------------------------------------------------------------- #
# persistence of updated indexes and version compatibility
# --------------------------------------------------------------------------- #
class TestPersistenceAndCompat:
    def test_updated_index_round_trips_through_save_load(self, paper_figure1_graph, tmp_path):
        index = build_local_index(paper_figure1_graph, THETA, backend="csr")
        updated = apply_updates(index, [EdgeUpdate("change", 3, 5, 0.6)])
        loaded = load_index(updated.save(tmp_path / "updated.npz"))
        assert loaded == updated
        assert loaded.revision == 1
        assert loaded.cache_key == updated.cache_key
        assert loaded.header["format_version"] == FORMAT_VERSION

    def test_version1_archive_still_loads(self, paper_figure1_graph, tmp_path):
        """Format 2 only adds lineage header fields; v1 archives stay readable."""
        index = build_local_index(paper_figure1_graph, THETA, backend="csr")
        header = {
            key: value
            for key, value in index.header.items()
            if key not in ("base_fingerprint", "update_log_digest", "revision")
        }
        header["format_version"] = 1
        legacy = NucleusIndex(header, index.arrays)
        loaded = load_index(legacy.save(tmp_path / "legacy.npz"))
        assert loaded.revision == 0
        assert loaded.base_fingerprint == loaded.fingerprint
        assert loaded.update_log_digest == ""
        assert loaded.cache_key == loaded.fingerprint
        # And it is updatable: the first batch promotes it to the live format.
        updated = apply_updates(loaded, [EdgeUpdate("change", 3, 5, 0.6)])
        assert updated.revision == 1
        assert updated.header["format_version"] == FORMAT_VERSION

    def test_future_version_archive_rejected_on_load(self, paper_figure1_graph, tmp_path):
        import io
        import json
        import zipfile

        index = build_local_index(paper_figure1_graph, THETA, backend="csr")
        path = index.save(tmp_path / "future.npz")
        header = dict(index.header, format_version=FORMAT_VERSION + 1)
        rewritten = tmp_path / "future2.npz"
        with zipfile.ZipFile(path) as src, zipfile.ZipFile(rewritten, "w") as dst:
            for item in src.namelist():
                if item == "__header__.npy":
                    buffer = io.BytesIO()
                    np.save(buffer, np.array(json.dumps(header, sort_keys=True)))
                    dst.writestr(item, buffer.getvalue())
                else:
                    dst.writestr(item, src.read(item))
        with pytest.raises(IndexFormatError, match="version"):
            load_index(rewritten)

    def test_truncated_archive_rejected(self, paper_figure1_graph, tmp_path):
        index = build_local_index(paper_figure1_graph, THETA, backend="csr")
        path = index.save(tmp_path / "whole.npz")
        clipped = tmp_path / "clipped.npz"
        clipped.write_bytes(path.read_bytes()[: path.stat().st_size // 2])
        with pytest.raises(IndexFormatError):
            load_index(clipped)


# --------------------------------------------------------------------------- #
# query-engine refresh across revisions
# --------------------------------------------------------------------------- #
class TestEngineRefresh:
    def test_refresh_swaps_revision_and_keeps_cache(self, paper_figure1_graph):
        graph = paper_figure1_graph
        index = build_local_index(graph, THETA, backend="csr")
        engine = NucleusQueryEngine(index, graph)
        before = engine.nucleus_of([1], k=1)
        assert engine.cache_info()["size"] >= 1

        updated = apply_updates(index, [EdgeUpdate("change", 3, 5, 0.99)])
        assert engine.refresh(updated) is engine
        assert engine.cache_info()["size"] >= 1  # old entries kept, keyed per revision
        after = engine.nucleus_of([1], k=1)

        fresh = NucleusQueryEngine(updated)
        expected = fresh.nucleus_of([1], k=1)
        assert set(after.vertices()) == set(expected.vertices())
        assert set(before.vertices()) == set(after.vertices())  # same nucleus here

    def test_refresh_answers_match_fresh_engine_everywhere(self, paper_figure1_graph):
        graph = paper_figure1_graph
        index = build_local_index(graph, THETA, backend="csr")
        engine = NucleusQueryEngine(index)
        engine.max_score(list(graph.vertices()))
        updated = apply_updates(index, [EdgeUpdate("delete", 1, 7)])
        engine.refresh(updated)
        fresh = NucleusQueryEngine(updated)
        vertices = sorted(graph.vertices())
        assert np.array_equal(
            engine.max_score(vertices), fresh.max_score(vertices)
        )
        for k in updated.levels:
            assert np.array_equal(
                engine.contains(vertices, k), fresh.contains(vertices, k)
            )

    def test_refresh_verifies_against_live_graph(self, paper_figure1_graph):
        graph = paper_figure1_graph
        index = build_local_index(graph, THETA, backend="csr")
        engine = NucleusQueryEngine(index, graph)
        updated = apply_updates(index, [EdgeUpdate("change", 3, 5, 0.6)])
        with pytest.raises(IndexCompatibilityError):
            engine.refresh(updated, graph)  # stale graph: fingerprints differ
        assert engine.index is index  # failed refresh leaves the engine untouched


# --------------------------------------------------------------------------- #
# fallback rebuild for non-incremental configurations
# --------------------------------------------------------------------------- #
class TestFallbackModes:
    def test_local_with_approximate_estimator_falls_back(self, paper_figure1_graph):
        graph = paper_figure1_graph
        edges = edge_dict(graph)
        index = build_local_index(graph, THETA, estimator=PoissonEstimator(), backend="csr")
        batch = [EdgeUpdate("change", 3, 5, 0.6)]
        updated = apply_updates(index, batch)
        rebuilt = build_local_index(
            graph_from(apply_to_edges(edges, batch), graph.vertices()),
            THETA,
            estimator=PoissonEstimator(),
            backend="csr",
        )
        assert_same_content(updated, rebuilt)
        assert updated.revision == 1
        assert updated.params["estimator"] == PoissonEstimator.name

    def test_unknown_estimator_name_raises(self, triangle_graph):
        index = build_local_index(triangle_graph, THETA, backend="csr")
        index.header["params"] = dict(index.header["params"], estimator="bogus")
        with pytest.raises(InvalidParameterError, match="unknown estimator"):
            apply_updates(index, [EdgeUpdate("change", 0, 1, 0.5)])

    @pytest.mark.parametrize("builder", [build_global_index, build_weak_index])
    def test_seeded_global_and_weak_indexes_rebuild_deterministically(self, builder):
        graph = small_er_graph(9, 0.6, seed=4)
        edges = edge_dict(graph)
        index = builder(graph, k=1, theta=0.4, n_samples=40, seed=11)
        batch = [EdgeUpdate("delete", *list(edges)[0])]
        updated = apply_updates(index, batch)
        rebuilt = builder(
            graph_from(apply_to_edges(edges, batch), graph.vertices()),
            k=1,
            theta=0.4,
            n_samples=40,
            seed=11,
        )
        assert_same_content(updated, rebuilt)
        assert updated.mode == index.mode
        assert updated.revision == 1
