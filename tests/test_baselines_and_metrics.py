"""Tests for the probabilistic core/truss baselines and the quality metrics."""

from __future__ import annotations


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.probabilistic_core import (
    eta_degrees,
    k_eta_core_subgraph,
    max_core_score,
    probabilistic_core_decomposition,
)
from repro.baselines.probabilistic_truss import (
    edge_triangle_probabilities,
    k_gamma_truss_subgraph,
    max_truss_score,
    probabilistic_truss_decomposition,
)
from repro.core.support_dp import NO_VALID_K
from repro.deterministic.kcore import core_decomposition
from repro.deterministic.ktruss import truss_decomposition
from repro.exceptions import InvalidParameterError
from graph_factories import small_er_graph
from repro.graph.generators import clique_graph
from repro.graph.probabilistic_graph import ProbabilisticGraph
from repro.metrics.clustering import (
    expected_triangle_count,
    expected_wedge_count,
    probabilistic_clustering_coefficient,
)
from repro.metrics.cohesiveness import average_cohesiveness, cohesiveness_report
from repro.metrics.density import expected_average_degree, probabilistic_density


class TestEtaDegrees:
    def test_certain_graph_matches_deterministic_degrees(self, five_clique_graph):
        degrees = eta_degrees(five_clique_graph, eta=0.9)
        assert all(d == 4 for d in degrees.values())

    def test_uncertain_star(self):
        graph = ProbabilisticGraph([(0, i, 0.5) for i in range(1, 5)])
        degrees = eta_degrees(graph, eta=0.5)
        # Pr(deg(0) >= 2) = 0.6875 >= 0.5 but Pr(deg >= 3) = 0.3125 < 0.5
        assert degrees[0] == 2
        assert all(degrees[i] == 1 for i in range(1, 5))

    def test_invalid_eta(self, five_clique_graph):
        with pytest.raises(InvalidParameterError):
            eta_degrees(five_clique_graph, eta=1.2)


class TestProbabilisticCore:
    def test_certain_graph_matches_deterministic_core(self, planted_graph):
        certain = ProbabilisticGraph.from_deterministic(
            (u, v) for u, v, _ in planted_graph.edges()
        )
        probabilistic = probabilistic_core_decomposition(certain, eta=0.99)
        deterministic = core_decomposition(certain)
        assert probabilistic == deterministic

    def test_scores_decrease_with_eta(self, planted_graph):
        low = probabilistic_core_decomposition(planted_graph, eta=0.1)
        high = probabilistic_core_decomposition(planted_graph, eta=0.9)
        for v in low:
            assert high[v] <= low[v]

    def test_k_eta_core_subgraph(self, planted_graph):
        eta = 0.3
        core = probabilistic_core_decomposition(planted_graph, eta)
        top = max(core.values())
        subgraph = k_eta_core_subgraph(planted_graph, top, eta, core)
        assert subgraph.num_vertices == sum(1 for s in core.values() if s >= top)
        assert max_core_score(planted_graph, eta) == top

    def test_invalid_parameters(self, planted_graph):
        with pytest.raises(InvalidParameterError):
            probabilistic_core_decomposition(planted_graph, eta=-0.1)
        with pytest.raises(InvalidParameterError):
            k_eta_core_subgraph(planted_graph, -1, 0.5)

    def test_empty_graph(self, empty_graph):
        assert probabilistic_core_decomposition(empty_graph, 0.5) == {}
        assert max_core_score(empty_graph, 0.5) == 0


class TestProbabilisticTruss:
    def test_edge_triangle_probabilities(self, four_clique_graph):
        edge_probability, wedges = edge_triangle_probabilities(four_clique_graph, 0, 1)
        assert edge_probability == pytest.approx(0.9)
        assert sorted(wedges) == pytest.approx([0.81, 0.81])

    def test_certain_graph_matches_deterministic_truss(self, planted_graph):
        certain = ProbabilisticGraph.from_deterministic(
            (u, v) for u, v, _ in planted_graph.edges()
        )
        probabilistic = probabilistic_truss_decomposition(certain, gamma=0.99)
        deterministic = truss_decomposition(certain)
        assert probabilistic == deterministic

    def test_low_probability_edges_get_sentinel(self):
        graph = clique_graph(4, probability=0.3)
        truss = probabilistic_truss_decomposition(graph, gamma=0.9)
        assert set(truss.values()) == {NO_VALID_K}
        assert max_truss_score(graph, 0.9) == NO_VALID_K

    def test_scores_decrease_with_gamma(self, planted_graph):
        low = probabilistic_truss_decomposition(planted_graph, gamma=0.1)
        high = probabilistic_truss_decomposition(planted_graph, gamma=0.9)
        for edge in low:
            assert high[edge] <= low[edge]

    def test_k_gamma_truss_subgraph(self, planted_graph):
        gamma = 0.3
        truss = probabilistic_truss_decomposition(planted_graph, gamma)
        top = max(truss.values())
        subgraph = k_gamma_truss_subgraph(planted_graph, top, gamma, truss)
        assert subgraph.num_edges == sum(1 for s in truss.values() if s >= top)

    def test_invalid_parameters(self, planted_graph):
        with pytest.raises(InvalidParameterError):
            probabilistic_truss_decomposition(planted_graph, gamma=1.1)
        with pytest.raises(InvalidParameterError):
            k_gamma_truss_subgraph(planted_graph, -1, 0.5)


class TestContainmentAcrossDecompositions:
    @given(seed=st.integers(0, 40))
    @settings(max_examples=10, deadline=None)
    def test_nucleus_vertices_inside_truss_and_core(self, seed):
        """The paper's motivation: nucleus ⊆ truss ⊆ core at matched thresholds."""
        from repro.core.local import local_nucleus_decomposition

        graph = small_er_graph(13, 0.55, seed=seed)
        theta = 0.2
        local = local_nucleus_decomposition(graph, theta)
        if local.max_score < 1:
            return
        truss = probabilistic_truss_decomposition(graph, theta)
        core = probabilistic_core_decomposition(graph, theta)
        for nucleus in local.nuclei(1):
            for u, v, _ in nucleus.subgraph.edges():
                edge = (u, v) if (u, v) in truss else (v, u)
                assert truss[edge] >= 1
            for vertex in nucleus.subgraph.vertices():
                assert core[vertex] >= 1


class TestDensity:
    def test_complete_certain_graph_has_density_one(self, five_clique_graph):
        assert probabilistic_density(five_clique_graph) == pytest.approx(1.0)

    def test_density_scales_with_probability(self):
        graph = clique_graph(5, probability=0.5)
        assert probabilistic_density(graph) == pytest.approx(0.5)

    def test_small_graphs(self, empty_graph, single_edge_graph):
        assert probabilistic_density(empty_graph) == 0.0
        assert probabilistic_density(single_edge_graph) == pytest.approx(0.5)

    def test_expected_average_degree(self, triangle_graph, empty_graph):
        assert expected_average_degree(triangle_graph) == pytest.approx(2 * 2.4 / 3)
        assert expected_average_degree(empty_graph) == 0.0


class TestClustering:
    def test_certain_clique_has_pcc_one(self, five_clique_graph):
        assert probabilistic_clustering_coefficient(five_clique_graph) == pytest.approx(1.0)

    def test_wedge_and_triangle_counts(self, triangle_graph):
        assert expected_triangle_count(triangle_graph) == pytest.approx(0.9 * 0.8 * 0.7)
        expected_wedges = 0.9 * 0.7 + 0.9 * 0.8 + 0.8 * 0.7
        assert expected_wedge_count(triangle_graph) == pytest.approx(expected_wedges)

    def test_triangle_pcc_closed_form(self, triangle_graph):
        triangles = 0.9 * 0.8 * 0.7
        wedges = 0.9 * 0.7 + 0.9 * 0.8 + 0.8 * 0.7
        assert probabilistic_clustering_coefficient(triangle_graph) == pytest.approx(
            3 * triangles / wedges
        )

    def test_wedge_only_graph_has_pcc_zero(self):
        graph = ProbabilisticGraph([(0, 1, 0.9), (1, 2, 0.9)])
        assert probabilistic_clustering_coefficient(graph) == 0.0

    def test_edgeless_graph_has_pcc_zero(self, empty_graph):
        assert probabilistic_clustering_coefficient(empty_graph) == 0.0

    @given(p=st.floats(0.05, 1.0))
    @settings(max_examples=25, deadline=None)
    def test_uniform_clique_pcc_equals_p(self, p):
        """For a clique with uniform probability p, PCC = p (numerator p^3, wedges p^2)."""
        graph = clique_graph(6, probability=p)
        assert probabilistic_clustering_coefficient(graph) == pytest.approx(p)


class TestCohesivenessReports:
    def test_report_fields(self, five_clique_graph):
        report = cohesiveness_report(five_clique_graph, label="clique", max_score=2)
        assert report.label == "clique"
        assert report.num_vertices == 5
        assert report.num_edges == 10
        assert report.max_score == 2
        assert report.probabilistic_density == pytest.approx(1.0)
        assert report.as_row()[0] == "clique"

    def test_average_over_components(self, five_clique_graph, four_clique_graph):
        average = average_cohesiveness([five_clique_graph, four_clique_graph], label="avg")
        assert average.num_vertices == round((5 + 4) / 2)
        assert 0.9 <= average.probabilistic_density <= 1.0

    def test_average_of_nothing(self):
        report = average_cohesiveness([], label="none", max_score=3)
        assert report.num_vertices == 0
        assert report.probabilistic_density == 0.0
        assert report.max_score == 3
