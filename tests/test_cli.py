"""Tests for the ``repro-index`` command-line interface.

The full surface (build / info / query, error handling) is exercised
in-process through ``repro.cli.main`` so coverage sees it; the end-to-end
console behaviour — real interpreter, real argv, real exit codes — is pinned
by ``subprocess`` smoke tests on top.
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import main
from repro.graph.generators import planted_nucleus_graph
from repro.graph.io import write_edge_list

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(scope="module")
def graph_file(tmp_path_factory) -> Path:
    graph = planted_nucleus_graph(
        num_communities=2,
        community_size=6,
        intra_density=1.0,
        background_vertices=8,
        background_density=0.1,
        bridges_per_community=2,
        probability_model=lambda rng: 0.9,
        seed=3,
    )
    path = tmp_path_factory.mktemp("cli") / "graph.txt.gz"
    write_edge_list(graph, path)
    return path


@pytest.fixture(scope="module")
def index_file(graph_file, tmp_path_factory) -> Path:
    path = tmp_path_factory.mktemp("cli-index") / "graph.idx.npz"
    assert main(["build", str(graph_file), "-o", str(path), "--theta", "0.3"]) == 0
    return path


class TestMainInProcess:
    def test_build_reports_summary(self, graph_file, tmp_path, capsys):
        out = tmp_path / "local.npz"
        assert main(["build", str(graph_file), "-o", str(out), "--theta", "0.3"]) == 0
        stdout = capsys.readouterr().out
        assert "mode=local" in stdout and out.exists()

    def test_build_weak_mode(self, graph_file, tmp_path, capsys):
        out = tmp_path / "weak.npz"
        code = main(
            ["build", str(graph_file), "-o", str(out), "--mode", "weak",
             "--k", "1", "--theta", "0.3", "--seed", "7", "--n-samples", "30"]
        )
        assert code == 0
        assert "mode=weakly-global" in capsys.readouterr().out

    def test_info_json(self, index_file, capsys):
        assert main(["info", str(index_file), "--json"]) == 0
        description = json.loads(capsys.readouterr().out)
        assert description["mode"] == "local"
        assert description["format"] == "repro-nucleus-index"

    def test_info_plain(self, index_file, capsys):
        assert main(["info", str(index_file)]) == 0
        assert "fingerprint:" in capsys.readouterr().out

    def test_query_max_score(self, index_file, capsys):
        assert main(["query", str(index_file), "max-score", "0", "1", "14"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 3 and lines[0].split("\t")[0] == "0"

    def test_query_nucleus(self, index_file, capsys):
        assert main(["query", str(index_file), "nucleus", "--k", "2", "0", "1"]) == 0
        stdout = capsys.readouterr().out
        assert "ProbabilisticNucleus" in stdout and "vertices:" in stdout

    def test_query_top(self, index_file, capsys):
        assert main(["query", str(index_file), "top", "--n", "2", "--by", "score"]) == 0
        lines = capsys.readouterr().out.strip().splitlines()
        assert len(lines) == 2 and lines[0].startswith("#1 ")

    def test_unknown_vertex_is_a_clean_error(self, index_file, capsys):
        assert main(["query", str(index_file), "max-score", "999"]) == 2
        assert "error" in capsys.readouterr().err

    def test_corrupted_index_is_a_clean_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.npz"
        bad.write_bytes(b"not an index")
        assert main(["info", str(bad)]) == 2
        assert "error" in capsys.readouterr().err

    def test_global_mode_requires_k(self, graph_file, tmp_path, capsys):
        out = tmp_path / "nope.npz"
        assert main(["build", str(graph_file), "-o", str(out), "--mode", "global"]) == 2
        assert "requires an explicit k" in capsys.readouterr().err


class TestConsoleScript:
    """True end-to-end smoke tests through a child interpreter."""

    def run_cli(self, *args: str) -> subprocess.CompletedProcess:
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        return subprocess.run(
            [sys.executable, "-m", "repro.cli", *args],
            capture_output=True,
            text=True,
            env=env,
            timeout=300,
        )

    def test_build_info_query_pipeline(self, graph_file, tmp_path):
        index = tmp_path / "cli.idx.npz"
        built = self.run_cli(
            "build", str(graph_file), "-o", str(index), "--theta", "0.3"
        )
        assert built.returncode == 0, built.stderr
        assert "mode=local" in built.stdout

        info = self.run_cli("info", str(index), "--json")
        assert info.returncode == 0, info.stderr
        assert json.loads(info.stdout)["num_vertices"] == 16

        query = self.run_cli("query", str(index), "nucleus", "--k", "2", "0")
        assert query.returncode == 0, query.stderr
        assert "vertices: 0 1 2 3 4 5" in query.stdout

    def test_missing_subcommand_exits_nonzero(self):
        result = self.run_cli()
        assert result.returncode != 0
        assert "usage" in (result.stderr + result.stdout).lower()
