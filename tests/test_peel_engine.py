"""Tests for the array-native peel engine (repro.core.peel) and its helpers.

Pins the tentpole guarantees: the bucket-queue engine produces exactly the
dict backend's scores on every edge case (empty graph, triangle-free graph,
θ = 1, θ → 0, all-sentinel graphs), the :class:`KappaRepair` hooks plug
interchangeably into the same loop, and the shared
:class:`~repro.peeling.LazyMinHeap` implements the lazy-deletion protocol
the dict-backend loops rely on.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.batch import batched_initial_kappas, build_triangle_extension_index
from repro.core.local import BACKENDS, local_nucleus_decomposition
from repro.core.peel import (
    EstimatorKappaRepair,
    KappaRepair,
    MonteCarloKappaRepair,
    peel_kappa_scores,
)
from repro.core.approximations import DynamicProgrammingEstimator
from repro.core.support_dp import NO_VALID_K
from repro.deterministic.nucleus import nucleus_decomposition
from repro.exceptions import InvalidParameterError
from repro.graph.generators import clique_graph, planted_nucleus_graph
from repro.graph.probabilistic_graph import ProbabilisticGraph
from repro.peeling import LazyMinHeap


def engine_scores(graph: ProbabilisticGraph, theta: float, repair=None) -> dict:
    """Run the engine directly on the flat arrays and map scores to labels."""
    csr = graph.to_csr()
    index = build_triangle_extension_index(csr)
    estimator = DynamicProgrammingEstimator()
    kappas = batched_initial_kappas(index, theta, estimator)
    if repair is None:
        repair = EstimatorKappaRepair(estimator, index.triangle_probabilities, theta)
    scores = peel_kappa_scores(index, kappas, repair)
    labels = csr.vertex_labels
    return {
        (labels[u], labels[v], labels[w]): score
        for (u, v, w), score in zip(index.triangles, scores.tolist())
    }


class TestLazyMinHeap:
    def test_pops_in_value_order(self):
        heap = LazyMinHeap([(3, "c"), (1, "a"), (2, "b")])
        values = {"a": 1, "b": 2, "c": 3}
        popped = []
        while (entry := heap.pop(values.get)) is not None:
            popped.append(entry)
        assert popped == [(1, "a"), (2, "b"), (3, "c")]

    def test_stale_entries_are_refreshed(self):
        heap = LazyMinHeap([(5, "x"), (2, "y")])
        values = {"x": 3, "y": 2}  # "x" decreased after insertion
        assert heap.pop(values.get) == (2, "y")
        # The stale (5, "x") entry is re-pushed with the fresh value and
        # returned once it is current.
        assert heap.pop(values.get) == (3, "x")
        assert heap.pop(values.get) is None

    def test_dead_items_are_dropped(self):
        heap = LazyMinHeap([(1, "dead"), (2, "alive")])
        current = lambda item: None if item == "dead" else 2  # noqa: E731
        assert heap.pop(current) == (2, "alive")
        assert not heap

    def test_push_during_drain(self):
        heap = LazyMinHeap([(1, "a")])
        values = {"a": 1, "b": 0}
        assert heap.pop(values.get) == (1, "a")
        heap.push(0, "b")
        assert len(heap) == 1
        assert heap.pop(values.get) == (0, "b")


class TestEngineMatchesDictBackend:
    """The bucket-queue engine reproduces the dict peel exactly."""

    @pytest.mark.parametrize("theta", [0.01, 0.3, 0.7])
    def test_fixture_scores(self, paper_figure1_graph, theta):
        expected = local_nucleus_decomposition(paper_figure1_graph, theta).scores
        assert engine_scores(paper_figure1_graph, theta) == expected

    def test_planted_scores(self, planted_graph):
        expected = local_nucleus_decomposition(planted_graph, 0.2).scores
        assert engine_scores(planted_graph, 0.2) == expected

    def test_scores_are_parallel_to_index_rows(self, four_clique_graph):
        csr = four_clique_graph.to_csr()
        index = build_triangle_extension_index(csr)
        estimator = DynamicProgrammingEstimator()
        kappas = batched_initial_kappas(index, 0.3, estimator)
        repair = EstimatorKappaRepair(estimator, index.triangle_probabilities, 0.3)
        scores = peel_kappa_scores(index, kappas, repair)
        assert scores.shape == (len(index.triangles),)
        assert scores.dtype == np.int64

    def test_rejects_mismatched_kappas(self, four_clique_graph):
        index = build_triangle_extension_index(four_clique_graph.to_csr())
        estimator = DynamicProgrammingEstimator()
        repair = EstimatorKappaRepair(estimator, index.triangle_probabilities, 0.3)
        with pytest.raises(InvalidParameterError):
            peel_kappa_scores(index, np.zeros(99, dtype=np.int64), repair)


class TestEdgeCases:
    """Empty, triangle-free, θ = 1, θ → 0, and all-sentinel inputs."""

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_empty_graph(self, empty_graph, backend):
        result = local_nucleus_decomposition(empty_graph, 0.5, backend=backend)
        assert result.scores == {}
        assert result.max_score == -1

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_triangle_free_graph(self, backend):
        path = ProbabilisticGraph([(0, 1, 0.9), (1, 2, 0.9), (2, 3, 0.9)])
        result = local_nucleus_decomposition(path, 0.2, backend=backend)
        assert result.scores == {}

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_theta_one_probabilistic_graph_is_all_sentinel(
        self, four_clique_graph, backend
    ):
        # p = 0.9 edges cannot reach θ = 1, so every triangle gets −1.
        result = local_nucleus_decomposition(four_clique_graph, 1.0, backend=backend)
        assert set(result.scores.values()) == {NO_VALID_K}

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_theta_one_certain_graph_keeps_full_support(
        self, five_clique_graph, backend
    ):
        # All-certain edges survive θ = 1; every triangle has support 2.
        result = local_nucleus_decomposition(five_clique_graph, 1.0, backend=backend)
        assert set(result.scores.values()) == {2}

    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("theta", [0.0, 1e-12])
    def test_theta_to_zero_reduces_to_deterministic_nucleusness(self, backend, theta):
        # With θ → 0 every κ equals the residual support count, so the peel
        # is exactly the deterministic nucleus decomposition.
        graph = planted_nucleus_graph(
            num_communities=2,
            community_size=5,
            intra_density=1.0,
            background_vertices=6,
            background_density=0.2,
            bridges_per_community=2,
            seed=9,
        )
        result = local_nucleus_decomposition(graph, theta, backend=backend)
        assert result.scores == nucleus_decomposition(graph)

    @pytest.mark.parametrize("backend", BACKENDS)
    def test_every_triangle_sentinel(self, disconnected_graph, backend):
        # Triangle probabilities are 0.9³ ≈ 0.73 and 0.8³ ≈ 0.51, both < 0.8.
        result = local_nucleus_decomposition(disconnected_graph, 0.8, backend=backend)
        assert len(result.scores) == 2
        assert set(result.scores.values()) == {NO_VALID_K}
        assert result.nuclei(0) == []

    def test_backends_agree_on_all_edge_cases(self, empty_graph, disconnected_graph):
        for graph, theta in [
            (empty_graph, 0.4),
            (disconnected_graph, 0.8),
            (clique_graph(4, probability=0.5), 1.0),
            (clique_graph(6, probability=1.0), 0.0),
        ]:
            expected = local_nucleus_decomposition(graph, theta, backend="dict")
            actual = local_nucleus_decomposition(graph, theta, backend="csr")
            assert actual.scores == expected.scores


class TestKappaRepairHooks:
    def test_estimator_repair_name_follows_estimator(self):
        probs = np.asarray([0.5])
        repair = EstimatorKappaRepair(DynamicProgrammingEstimator(), probs, 0.3)
        assert repair.name == "dp"
        assert repair.recompute(0, [1.0, 1.0]) == 2
        assert repair.recompute(0, []) == 0

    def test_monte_carlo_exact_on_certain_extensions(self, five_clique_graph):
        # With all-certain edges the sampled tail is exact, so the MC hook
        # reproduces the DP scores bit for bit.
        expected = local_nucleus_decomposition(five_clique_graph, 0.5).scores
        csr = five_clique_graph.to_csr()
        index = build_triangle_extension_index(csr)
        repair = MonteCarloKappaRepair(
            index.triangle_probabilities, 0.5, n_samples=64, seed=7
        )
        assert engine_scores(five_clique_graph, 0.5, repair=repair) == expected

    def test_monte_carlo_close_to_dp_on_probabilistic_graph(self, planted_graph):
        exact = local_nucleus_decomposition(planted_graph, 0.2).scores
        csr = planted_graph.to_csr()
        index = build_triangle_extension_index(csr)
        repair = MonteCarloKappaRepair(
            index.triangle_probabilities, 0.2, n_samples=4000, seed=11
        )
        approximate = engine_scores(planted_graph, 0.2, repair=repair)
        assert set(approximate) == set(exact)
        for triangle, score in exact.items():
            assert abs(approximate[triangle] - score) <= 1

    def test_monte_carlo_validates_sample_count(self):
        with pytest.raises(InvalidParameterError):
            MonteCarloKappaRepair(np.asarray([0.5]), 0.3, n_samples=0)

    def test_custom_repair_plugs_into_the_loop(self, four_clique_graph):
        class SupportCountRepair(KappaRepair):
            """κ = number of surviving cliques — the θ→0 limit."""

            name = "support-count"

            def recompute(self, triangle, surviving_probabilities):
                return len(surviving_probabilities)

        csr = four_clique_graph.to_csr()
        index = build_triangle_extension_index(csr)
        sizes = np.diff(index.tri_clique_indptr)
        scores = peel_kappa_scores(index, sizes.astype(np.int64), SupportCountRepair())
        assert scores.tolist() == [
            nucleus_decomposition(four_clique_graph)[triangle]
            for triangle in sorted(nucleus_decomposition(four_clique_graph))
        ]
