"""Tests for the persistent nucleus index (repro.index).

Covers the save()/load() round trip over every bundled dataset analogue, the
graph fingerprint, corrupted/mismatched file handling, and the index built
from each of the three decomposition modes.
"""

from __future__ import annotations

import functools
import io
import json
import zipfile

import numpy as np
import pytest

from repro.core.local import local_nucleus_decomposition
from repro.core.weak_nucleus import weak_nucleus_decomposition
from repro.exceptions import (
    IndexCompatibilityError,
    IndexFormatError,
    InvalidParameterError,
)
from repro.experiments.datasets import DATASET_NAMES, load_dataset
from repro.graph.generators import clique_graph, planted_nucleus_graph
from repro.graph.probabilistic_graph import ProbabilisticGraph
from repro.index import (
    NucleusIndex,
    build_global_index,
    build_index,
    build_local_index,
    build_weak_index,
    graph_fingerprint,
    load_index,
)

THETA = 0.3


@functools.lru_cache(maxsize=None)
def local_index_for(name: str) -> tuple[ProbabilisticGraph, NucleusIndex]:
    graph = load_dataset(name, scale="tiny")
    result = local_nucleus_decomposition(graph, THETA)
    return graph, result.build_index()


@pytest.fixture
def planted() -> ProbabilisticGraph:
    return planted_nucleus_graph(
        num_communities=2,
        community_size=6,
        intra_density=1.0,
        background_vertices=8,
        background_density=0.1,
        bridges_per_community=2,
        probability_model=lambda rng: 0.9,
        seed=3,
    )


# --------------------------------------------------------------------------- #
# fingerprint
# --------------------------------------------------------------------------- #
class TestFingerprint:
    def test_insertion_order_invariant(self):
        a = ProbabilisticGraph([(1, 2, 0.5), (2, 3, 0.25), (1, 3, 0.125)])
        b = ProbabilisticGraph([(1, 3, 0.125), (2, 3, 0.25), (1, 2, 0.5)])
        assert graph_fingerprint(a) == graph_fingerprint(b)

    def test_substrate_invariant(self):
        graph = clique_graph(5, probability=0.7)
        assert graph_fingerprint(graph) == graph_fingerprint(graph.to_csr())

    def test_sensitive_to_probability_change(self):
        a = ProbabilisticGraph([(1, 2, 0.5), (2, 3, 0.25)])
        b = ProbabilisticGraph([(1, 2, 0.5), (2, 3, 0.250001)])
        assert graph_fingerprint(a) != graph_fingerprint(b)

    def test_sensitive_to_structure_change(self):
        a = clique_graph(5, probability=0.7)
        b = clique_graph(5, probability=0.7)
        b.add_vertex(99)
        assert graph_fingerprint(a) != graph_fingerprint(b)


# --------------------------------------------------------------------------- #
# round trip over every bundled generator
# --------------------------------------------------------------------------- #
class TestRoundTrip:
    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_save_load_bit_identical(self, name, tmp_path):
        graph, index = local_index_for(name)
        path = index.save(tmp_path / f"{name}.npz")
        loaded = load_index(path, graph=graph)
        assert loaded == index
        # A second generation of the cycle is also identical.
        again = load_index(loaded.save(tmp_path / f"{name}2.npz"))
        assert again == index
        for key, array in index.arrays.items():
            assert np.array_equal(loaded.arrays[key], array), key
            assert loaded.arrays[key].dtype == array.dtype, key
        assert loaded.header == index.header

    @pytest.mark.parametrize("name", DATASET_NAMES)
    def test_snapshot_matches_decomposition(self, name):
        graph, index = local_index_for(name)
        result = local_nucleus_decomposition(graph, THETA)
        assert index.mode == "local"
        assert index.theta == THETA
        assert index.fingerprint == graph_fingerprint(graph)
        assert index.num_triangles == result.num_triangles
        assert index.num_vertices == graph.num_vertices
        assert index.num_edges == graph.num_edges
        assert list(index.levels) == list(range(0, result.max_score + 1))
        assert index.to_probabilistic_graph() == graph
        # Scores survive the id translation exactly.
        labels = index.vertex_labels
        snapshot = {
            tuple(labels[i] for i in row): score
            for row, score in zip(
                index.arrays["triangles"].tolist(),
                index.arrays["triangle_scores"].tolist(),
            )
        }
        assert snapshot == result.scores

    def test_triangle_rows_sorted_and_ranked(self, planted):
        index = build_local_index(planted, THETA)
        rows = [tuple(r) for r in index.arrays["triangles"].tolist()]
        assert rows == sorted(rows)
        scores = index.arrays["triangle_scores"]
        ranked = scores[index.arrays["triangle_order"]]
        assert np.all(np.diff(ranked) <= 0)

    def test_empty_graph_round_trips(self, tmp_path):
        index = build_index(ProbabilisticGraph(), mode="local", theta=0.5)
        assert index.num_triangles == 0 and index.levels == ()
        loaded = load_index(index.save(tmp_path / "empty.npz"))
        assert loaded == index

    def test_save_normalises_suffixless_path(self, planted, tmp_path):
        index = build_local_index(planted, THETA)
        # numpy appends .npz on its own; save() must return the real file.
        written = index.save(tmp_path / "graph.idx")
        assert written == tmp_path / "graph.idx.npz"
        assert written.exists()
        assert load_index(written) == index


# --------------------------------------------------------------------------- #
# the three builder entry points
# --------------------------------------------------------------------------- #
class TestBuilders:
    def test_build_index_dispatches_local(self, planted):
        index = build_index(planted, mode="local", theta=THETA, backend="csr")
        assert index.mode == "local"
        assert index.params["backend"] == "csr"

    def test_global_index(self, planted, tmp_path):
        index = build_global_index(planted, k=1, theta=THETA, seed=7, n_samples=40)
        assert index.mode == "global"
        assert index.levels == (1,)
        loaded = load_index(index.save(tmp_path / "g.npz"), graph=planted)
        assert loaded == index

    def test_empty_decomposition_still_indexes_its_level(self, planted):
        # A k with no nuclei must be answerable (empty), not "not indexed".
        index = NucleusIndex.from_nuclei(
            planted, [], k=9, theta=THETA, mode="global"
        )
        assert index.levels == (9,)
        assert index.num_components == 0
        assert index.num_triangles == 0

    def test_weak_index_matches_decomposition(self, planted, tmp_path):
        nuclei = weak_nucleus_decomposition(planted, k=1, theta=THETA, seed=7, n_samples=40)
        index = build_weak_index(planted, k=1, theta=THETA, seed=7, n_samples=40)
        assert index.mode == "weakly-global"
        assert index.num_components == len(nuclei)
        loaded = load_index(index.save(tmp_path / "w.npz"), graph=planted)
        assert loaded == index

    def test_modes_require_k(self, planted):
        with pytest.raises(InvalidParameterError):
            build_index(planted, mode="global", theta=THETA)
        with pytest.raises(InvalidParameterError):
            build_index(planted, mode="nonsense", theta=THETA)

    def test_from_nuclei_rejects_bad_arguments(self, planted):
        with pytest.raises(InvalidParameterError):
            NucleusIndex.from_nuclei(planted, [], k=1, theta=THETA, mode="local")
        with pytest.raises(InvalidParameterError):
            NucleusIndex.from_nuclei(planted, [], k=-1, theta=THETA, mode="global")

    def test_unserialisable_labels_rejected(self):
        graph = ProbabilisticGraph([((1, 2), (3, 4), 0.5)])
        with pytest.raises(IndexFormatError):
            build_local_index(graph, THETA)


# --------------------------------------------------------------------------- #
# the direct array-snapshot path (no dict-result detour on backend="csr")
# --------------------------------------------------------------------------- #
class TestDirectArraySnapshot:
    @pytest.mark.parametrize("name", DATASET_NAMES[:3])
    def test_csr_build_equals_dict_result_detour(self, name):
        graph = load_dataset(name, scale="tiny")
        direct = build_local_index(graph, THETA, backend="csr")
        detour = NucleusIndex.from_local_result(
            local_nucleus_decomposition(graph, THETA, backend="csr"),
            params={"backend": "csr"},
        )
        assert direct == detour

    def test_csr_and_dict_backends_agree_on_arrays(self, planted):
        direct = build_local_index(planted, THETA, backend="csr")
        via_dict = build_local_index(planted, THETA, backend="dict")
        # Headers differ only in the recorded backend; every array (graph,
        # scores, components, postings) must be identical.
        for name in direct.arrays:
            assert np.array_equal(direct.arrays[name], via_dict.arrays[name]), name
        assert direct.fingerprint == via_dict.fingerprint
        assert direct.params["estimator"] == via_dict.params["estimator"]

    def test_csr_graph_input_uses_direct_path(self, planted, tmp_path):
        index = build_local_index(planted.to_csr(), THETA)
        assert index.mode == "local"
        loaded = load_index(index.save(tmp_path / "direct.npz"), graph=planted)
        assert loaded == index

    def test_direct_path_validates_theta_and_backend(self, planted):
        # The no-detour path must reject the same bad parameters the
        # decomposition entry point rejects.
        with pytest.raises(InvalidParameterError):
            build_local_index(planted, 1.5, backend="csr")
        with pytest.raises(InvalidParameterError):
            build_local_index(planted.to_csr(), -0.1)
        with pytest.raises(InvalidParameterError):
            build_local_index(planted, THETA, backend="bogus")

    def test_from_triangle_arrays_validates_input(self, planted):
        csr = planted.to_csr()
        rows = np.array([[0, 1, 2], [0, 1, 3]], dtype=np.int64)
        scores = np.zeros(2, dtype=np.int64)
        with pytest.raises(InvalidParameterError):
            NucleusIndex.from_triangle_arrays(
                csr, rows, np.zeros(3, dtype=np.int64), {}, mode="local", theta=0.3
            )
        with pytest.raises(InvalidParameterError):
            NucleusIndex.from_triangle_arrays(
                csr, rows[::-1].copy(), scores, {}, mode="local", theta=0.3
            )
        descending_row = np.array([[2, 1, 0]], dtype=np.int64)
        with pytest.raises(InvalidParameterError):
            NucleusIndex.from_triangle_arrays(
                csr,
                descending_row,
                np.zeros(1, dtype=np.int64),
                {},
                mode="local",
                theta=0.3,
            )
        with pytest.raises(InvalidParameterError):
            NucleusIndex.from_triangle_arrays(
                csr, rows, scores, {}, mode="sideways", theta=0.3
            )


# --------------------------------------------------------------------------- #
# failure modes of load()
# --------------------------------------------------------------------------- #
class TestLoadFailures:
    def test_garbage_file(self, tmp_path):
        path = tmp_path / "garbage.npz"
        path.write_bytes(b"this is not a zip archive")
        with pytest.raises(IndexFormatError):
            load_index(path)

    def test_missing_header(self, tmp_path):
        path = tmp_path / "headerless.npz"
        np.savez(path, some_array=np.arange(3))
        with pytest.raises(IndexFormatError, match="missing header"):
            load_index(path)

    def test_missing_array_entry(self, planted, tmp_path):
        index = build_local_index(planted, THETA)
        original = index.save(tmp_path / "ok.npz")
        stripped = tmp_path / "stripped.npz"
        with zipfile.ZipFile(original) as src, zipfile.ZipFile(stripped, "w") as dst:
            for item in src.namelist():
                if item != "triangle_scores.npy":
                    dst.writestr(item, src.read(item))
        with pytest.raises(IndexFormatError, match="triangle_scores"):
            load_index(stripped)

    def test_corrupted_header_json(self, planted, tmp_path):
        index = build_local_index(planted, THETA)
        path = index.save(tmp_path / "ok.npz")
        bad = tmp_path / "badheader.npz"
        buffer = io.BytesIO()
        np.save(buffer, np.array("{this is not json"))
        with zipfile.ZipFile(path) as src, zipfile.ZipFile(bad, "w") as dst:
            for item in src.namelist():
                data = buffer.getvalue() if item == "__header__.npy" else src.read(item)
                dst.writestr(item, data)
        with pytest.raises(IndexFormatError, match="corrupted header"):
            load_index(bad)

    def test_unsupported_version(self, planted, tmp_path):
        index = build_local_index(planted, THETA)
        header = dict(index.header, format_version=999)
        with pytest.raises(IndexFormatError, match="version"):
            NucleusIndex(header, index.arrays)

    def test_fingerprint_mismatch(self, planted, tmp_path):
        index = build_local_index(planted, THETA)
        path = index.save(tmp_path / "idx.npz")
        other = clique_graph(6, probability=0.5)
        with pytest.raises(IndexCompatibilityError):
            load_index(path, graph=other)
        # Loading without a graph defers the check; verify_against still fails.
        loaded = load_index(path)
        with pytest.raises(IndexCompatibilityError):
            loaded.verify_against(other)
        loaded.verify_against(planted)

    def test_mutated_array_breaks_equality(self, planted):
        a = build_local_index(planted, THETA)
        b = build_local_index(planted, THETA)
        assert a == b
        b.arrays["triangle_scores"] = b.arrays["triangle_scores"] + 1
        assert a != b


# --------------------------------------------------------------------------- #
# header / describe
# --------------------------------------------------------------------------- #
class TestHeader:
    def test_describe_is_json_able(self, planted):
        index = build_local_index(planted, THETA)
        description = json.loads(json.dumps(index.describe()))
        assert description["mode"] == "local"
        assert description["format_version"] == 2
        assert description["num_triangles"] == index.num_triangles

    def test_repr_mentions_shape(self, planted):
        index = build_local_index(planted, THETA)
        text = repr(index)
        assert "mode='local'" in text and f"triangles={index.num_triangles}" in text
