"""Tests for deterministic k-core, k-truss, (3,4)-nucleus, and connectivity."""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deterministic.connectivity import connected_components, is_connected, largest_component
from repro.deterministic.kcore import core_decomposition, degeneracy, k_core_subgraph
from repro.deterministic.ktruss import (
    edge_supports,
    k_truss_subgraph,
    max_truss_number,
    truss_decomposition,
)
from repro.deterministic.nucleus import (
    is_k_nucleus,
    k_nucleus_subgraphs,
    k_nucleus_triangle_groups,
    max_nucleus_number,
    nucleus_decomposition,
    triangles_to_edge_subgraph,
)
from repro.exceptions import InvalidParameterError
from graph_factories import small_er_graph
from repro.graph.generators import clique_graph
from repro.graph.probabilistic_graph import ProbabilisticGraph


class TestCoreDecomposition:
    def test_clique_core_numbers(self):
        for n in range(2, 8):
            graph = clique_graph(n)
            core = core_decomposition(graph)
            assert set(core.values()) == {n - 1}

    def test_path_core_numbers(self):
        graph = ProbabilisticGraph([(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
        core = core_decomposition(graph)
        assert set(core.values()) == {1}

    def test_empty_graph(self, empty_graph):
        assert core_decomposition(empty_graph) == {}
        assert degeneracy(empty_graph) == 0

    def test_isolated_vertex_has_core_zero(self):
        graph = ProbabilisticGraph()
        graph.add_vertex("loner")
        graph.add_edge(1, 2, 1.0)
        core = core_decomposition(graph)
        assert core["loner"] == 0
        assert core[1] == 1

    def test_matches_networkx(self, planted_graph):
        import networkx as nx

        expected = nx.core_number(planted_graph.to_networkx())
        assert core_decomposition(planted_graph) == expected

    def test_k_core_subgraph_min_degree(self, planted_graph):
        k = degeneracy(planted_graph)
        sub = k_core_subgraph(planted_graph, k)
        assert sub.num_vertices > 0
        for v in sub.vertices():
            assert sub.degree(v) >= k

    def test_k_core_negative_k_rejected(self, planted_graph):
        with pytest.raises(InvalidParameterError):
            k_core_subgraph(planted_graph, -1)


class TestTrussDecomposition:
    def test_clique_truss_numbers(self):
        for n in range(3, 8):
            graph = clique_graph(n)
            truss = truss_decomposition(graph)
            assert set(truss.values()) == {n - 2}

    def test_edge_supports(self, five_clique_graph):
        supports = edge_supports(five_clique_graph)
        assert set(supports.values()) == {3}

    def test_triangle_free_graph(self):
        graph = ProbabilisticGraph([(0, 1, 1.0), (1, 2, 1.0), (2, 3, 1.0)])
        truss = truss_decomposition(graph)
        assert set(truss.values()) == {0}
        assert max_truss_number(graph) == 0

    def test_k_truss_subgraph_support_invariant(self, planted_graph):
        k = max_truss_number(planted_graph)
        sub = k_truss_subgraph(planted_graph, k)
        assert sub.num_edges > 0
        for u, v, _ in sub.edges():
            assert len(sub.common_neighbors(u, v)) >= k

    def test_k_truss_negative_k_rejected(self, planted_graph):
        with pytest.raises(InvalidParameterError):
            k_truss_subgraph(planted_graph, -2)

    def test_two_attached_cliques(self):
        """Two 4-cliques sharing an edge: the shared edge gets the higher support but
        the truss number of every edge is 2 (each clique alone is a 2-truss)."""
        graph = ProbabilisticGraph()
        for u, v in itertools.combinations([0, 1, 2, 3], 2):
            graph.add_edge(u, v, 1.0)
        for u, v in itertools.combinations([2, 3, 4, 5], 2):
            if not graph.has_edge(u, v):
                graph.add_edge(u, v, 1.0)
        truss = truss_decomposition(graph)
        assert set(truss.values()) == {2}


class TestNucleusDecomposition:
    def test_clique_nucleusness(self):
        """In an n-clique every triangle lies in exactly n-3 4-cliques."""
        for n in range(4, 8):
            graph = clique_graph(n)
            scores = nucleus_decomposition(graph)
            assert set(scores.values()) == {n - 3}
            assert max_nucleus_number(graph) == n - 3

    def test_triangle_without_cliques_scores_zero(self, triangle_graph):
        scores = nucleus_decomposition(triangle_graph)
        assert scores == {(0, 1, 2): 0}

    def test_empty_graph(self, empty_graph):
        assert nucleus_decomposition(empty_graph) == {}
        assert max_nucleus_number(empty_graph) == 0

    def test_two_cliques_sharing_a_triangle(self):
        """Two 5-cliques sharing 3 vertices: shared triangles see 4 cliques but
        peel to the per-clique level 2."""
        graph = ProbabilisticGraph()
        for u, v in itertools.combinations([0, 1, 2, 3, 4], 2):
            graph.add_edge(u, v, 1.0)
        for u, v in itertools.combinations([2, 3, 4, 5, 6], 2):
            if not graph.has_edge(u, v):
                graph.add_edge(u, v, 1.0)
        scores = nucleus_decomposition(graph)
        assert max(scores.values()) == 2
        assert scores[(2, 3, 4)] == 2

    def test_k_nucleus_subgraphs_of_clique(self, five_clique_graph):
        subgraphs = k_nucleus_subgraphs(five_clique_graph, 2)
        assert len(subgraphs) == 1
        assert subgraphs[0].num_vertices == 5
        assert subgraphs[0].num_edges == 10

    def test_k_nucleus_groups_empty_when_k_too_large(self, five_clique_graph):
        assert k_nucleus_triangle_groups(five_clique_graph, 3) == []

    def test_k_nucleus_groups_disjoint_cliques(self):
        graph = ProbabilisticGraph()
        for offset in (0, 10):
            for u, v in itertools.combinations(range(offset, offset + 5), 2):
                graph.add_edge(u, v, 1.0)
        groups = k_nucleus_triangle_groups(graph, 2)
        assert len(groups) == 2

    def test_negative_k_rejected(self, five_clique_graph):
        with pytest.raises(InvalidParameterError):
            k_nucleus_triangle_groups(five_clique_graph, -1)
        with pytest.raises(InvalidParameterError):
            is_k_nucleus(five_clique_graph, -1)

    def test_triangles_to_edge_subgraph(self, five_clique_graph):
        sub = triangles_to_edge_subgraph(five_clique_graph, [(0, 1, 2)])
        assert sub.num_edges == 3
        assert sub.edge_probability(0, 1) == 1.0

    def test_planted_communities_recovered(self, planted_graph):
        """The planted 6-cliques should surface as nuclei at k = 3."""
        scores = nucleus_decomposition(planted_graph)
        assert max(scores.values()) == 3
        groups = k_nucleus_triangle_groups(planted_graph, 3, scores)
        assert len(groups) == 3
        for group in groups:
            vertices = {v for triangle in group for v in triangle}
            assert len(vertices) == 6


class TestIsKNucleus:
    def test_clique_is_nucleus_up_to_its_level(self, five_clique_graph):
        assert is_k_nucleus(five_clique_graph, 0)
        assert is_k_nucleus(five_clique_graph, 1)
        assert is_k_nucleus(five_clique_graph, 2)
        assert not is_k_nucleus(five_clique_graph, 3)

    def test_graph_with_uncovered_edge_is_not_nucleus(self):
        graph = clique_graph(4)
        graph.add_edge(0, 99, 1.0)
        assert not is_k_nucleus(graph, 0)

    def test_triangle_only_graph_is_not_nucleus(self, triangle_graph):
        # No 4-clique at all: not a union of 4-cliques.
        assert not is_k_nucleus(triangle_graph, 0)

    def test_empty_graph_is_not_nucleus(self, empty_graph):
        assert not is_k_nucleus(empty_graph, 0)

    def test_disconnected_cliques_are_not_one_nucleus(self):
        graph = ProbabilisticGraph()
        for offset in (0, 10):
            for u, v in itertools.combinations(range(offset, offset + 4), 2):
                graph.add_edge(u, v, 1.0)
        assert not is_k_nucleus(graph, 1)

    def test_isolated_vertices_are_tolerated(self):
        graph = clique_graph(4)
        graph.add_vertex("isolated")
        assert is_k_nucleus(graph, 1)

    def test_lemma3_small_cases(self):
        """Lemma 3: the only k-nucleus on k+3 vertices is the (k+3)-clique."""
        from repro.hardness.reductions import only_k_nucleus_on_k_plus_3_vertices_is_clique

        assert only_k_nucleus_on_k_plus_3_vertices_is_clique(1)
        assert only_k_nucleus_on_k_plus_3_vertices_is_clique(2)


class TestConnectivity:
    def test_connected_components(self, disconnected_graph):
        components = connected_components(disconnected_graph)
        assert len(components) == 2
        assert {0, 1, 2} in components and {10, 11, 12} in components

    def test_is_connected(self, triangle_graph, disconnected_graph, empty_graph):
        assert is_connected(triangle_graph)
        assert not is_connected(disconnected_graph)
        assert not is_connected(empty_graph)

    def test_single_vertex_is_connected(self):
        graph = ProbabilisticGraph()
        graph.add_vertex(1)
        assert is_connected(graph)

    def test_largest_component(self, disconnected_graph, empty_graph):
        disconnected_graph.add_edge(0, 5, 0.5)
        largest = largest_component(disconnected_graph)
        assert set(largest.vertices()) == {0, 1, 2, 5}
        assert largest_component(empty_graph).num_vertices == 0


class TestHierarchyProperties:
    @given(seed=st.integers(0, 60))
    @settings(max_examples=20, deadline=None)
    def test_nucleusness_bounded_by_truss_and_core(self, seed):
        """nucleus score of a triangle <= truss score of its edges <= core score of its vertices
        (up to the standard offsets), a containment the paper's Section 2 relies on."""
        graph = small_er_graph(14, 0.45, seed=seed)
        nucleus = nucleus_decomposition(graph)
        truss = truss_decomposition(graph)
        core = core_decomposition(graph)
        for (a, b, c), score in nucleus.items():
            for u, v in ((a, b), (a, c), (b, c)):
                edge = (u, v) if (u, v) in truss else (v, u)
                assert score <= truss[edge]
            for v in (a, b, c):
                assert score + 2 <= core[v]

    @given(seed=st.integers(0, 60))
    @settings(max_examples=15, deadline=None)
    def test_k_nucleus_subgraph_triangles_have_enough_support(self, seed):
        graph = small_er_graph(13, 0.5, seed=seed)
        top = max_nucleus_number(graph)
        if top == 0:
            return
        for subgraph in k_nucleus_subgraphs(graph, top):
            # every triangle of the reported nucleus has support >= top inside it
            from repro.deterministic.cliques import triangle_supports

            supports = triangle_supports(subgraph)
            covered = [s for s in supports.values() if s > 0]
            assert covered and min(covered) >= 0
            assert is_k_nucleus(subgraph, 0)
