"""Tests for edge-list I/O, synthetic generators, and dataset statistics."""

from __future__ import annotations

import gzip

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import GraphFormatError, InvalidParameterError
from repro.graph.generators import (
    GeneratorSpec,
    assign_jaccard_probabilities,
    beta_probability,
    clique_graph,
    collaboration_probability,
    complete_probabilistic_graph,
    confidence_probability,
    erdos_renyi_graph,
    overlapping_community_graph,
    planted_nucleus_graph,
    power_law_cluster_graph,
    uniform_probability,
)
from repro.graph.io import (
    attach_probabilities,
    attach_uniform_probabilities,
    parse_edge_line,
    read_edge_list,
    write_edge_list,
)
from repro.graph.probabilistic_graph import ProbabilisticGraph
from repro.graph.statistics import format_statistics_table, graph_statistics


class TestEdgeListParsing:
    def test_three_column_line(self):
        assert parse_edge_line("1 2 0.5") == (1, 2, 0.5)

    def test_two_column_line_defaults_to_certain(self):
        assert parse_edge_line("3 4") == (3, 4, 1.0)

    def test_string_vertices(self):
        assert parse_edge_line("alice bob 0.25") == ("alice", "bob", 0.25)

    def test_comments_and_blanks_are_skipped(self):
        assert parse_edge_line("# a comment") is None
        assert parse_edge_line("% another") is None
        assert parse_edge_line("   ") is None

    def test_malformed_lines_raise(self):
        with pytest.raises(GraphFormatError):
            parse_edge_line("1 2 3 4", line_number=7)
        with pytest.raises(GraphFormatError):
            parse_edge_line("1 2 not-a-number")


class TestReadWrite:
    def test_round_trip(self, tmp_path, paper_figure1_graph):
        path = tmp_path / "graph.txt"
        write_edge_list(paper_figure1_graph, path)
        loaded = read_edge_list(path)
        assert loaded == paper_figure1_graph

    def test_write_without_probabilities(self, tmp_path, triangle_graph):
        path = tmp_path / "plain.txt"
        write_edge_list(triangle_graph, path, include_probabilities=False)
        loaded = read_edge_list(path)
        assert loaded.num_edges == 3
        assert all(p == 1.0 for _, _, p in loaded.edges())

    def test_self_loops_skipped_by_default(self, tmp_path):
        path = tmp_path / "loops.txt"
        path.write_text("1 1 0.5\n1 2 0.5\n")
        graph = read_edge_list(path)
        assert graph.num_edges == 1

    def test_self_loops_rejected_when_strict(self, tmp_path):
        path = tmp_path / "loops.txt"
        path.write_text("1 1 0.5\n")
        with pytest.raises(GraphFormatError):
            read_edge_list(path, skip_self_loops=False)

    def test_gzip_round_trip(self, tmp_path, paper_figure1_graph):
        path = tmp_path / "graph.txt.gz"
        write_edge_list(paper_figure1_graph, path)
        # The file really is gzip-compressed (magic bytes), not plain text.
        assert path.read_bytes()[:2] == b"\x1f\x8b"
        assert read_edge_list(path) == paper_figure1_graph

    def test_gzip_reads_externally_compressed_file(self, tmp_path):
        path = tmp_path / "external.txt.gz"
        with gzip.open(path, "wt", encoding="utf-8") as handle:
            handle.write("# u v p\n1 2 0.5\nalice bob 0.25\n")
        graph = read_edge_list(path)
        assert graph.edge_probability(1, 2) == 0.5
        assert graph.edge_probability("alice", "bob") == 0.25

    def test_gzip_probabilities_survive_exactly(self, tmp_path):
        graph = ProbabilisticGraph([(1, 2, 1 / 3), (2, 3, 0.1 + 0.2)])
        plain, packed = tmp_path / "g.txt", tmp_path / "g.txt.gz"
        write_edge_list(graph, plain)
        write_edge_list(graph, packed)
        assert read_edge_list(packed) == read_edge_list(plain) == graph

    def test_attach_uniform_probabilities(self, triangle_graph):
        reassigned = attach_uniform_probabilities(triangle_graph, seed=1)
        assert reassigned.num_edges == triangle_graph.num_edges
        assert all(0.0 < p <= 1.0 for _, _, p in reassigned.edges())

    def test_attach_probabilities_callable(self, triangle_graph):
        reassigned = attach_probabilities(triangle_graph, lambda u, v: 0.42)
        assert all(p == 0.42 for _, _, p in reassigned.edges())


class TestProbabilityModels:
    @pytest.mark.parametrize(
        "model",
        [
            uniform_probability(),
            beta_probability(),
            collaboration_probability(),
            confidence_probability(),
        ],
    )
    def test_models_stay_in_unit_interval(self, model):
        import random

        rng = random.Random(0)
        values = [model(rng) for _ in range(500)]
        assert all(0.0 < value <= 1.0 for value in values)

    def test_confidence_mode_controls_mean(self):
        import random

        rng = random.Random(0)
        high = confidence_probability(mode=0.9, concentration=20)
        low = confidence_probability(mode=0.2, concentration=20)
        high_mean = sum(high(rng) for _ in range(300)) / 300
        low_mean = sum(low(rng) for _ in range(300)) / 300
        assert high_mean > low_mean

    def test_invalid_model_parameters(self):
        with pytest.raises(InvalidParameterError):
            uniform_probability(0.9, 0.5)
        with pytest.raises(InvalidParameterError):
            beta_probability(alpha=0)
        with pytest.raises(InvalidParameterError):
            collaboration_probability(mean_collaborations=-1)
        with pytest.raises(InvalidParameterError):
            confidence_probability(mode=1.5)


class TestGenerators:
    def test_clique_graph(self):
        graph = clique_graph(5, probability=0.7)
        assert graph.num_vertices == 5 and graph.num_edges == 10
        with pytest.raises(InvalidParameterError):
            clique_graph(0)
        with pytest.raises(InvalidParameterError):
            clique_graph(3, vertices=[1, 2])

    def test_complete_probabilistic_graph(self):
        graph = complete_probabilistic_graph(6, uniform_probability(), seed=0)
        assert graph.num_edges == 15

    def test_erdos_renyi_reproducible(self):
        first = erdos_renyi_graph(20, 0.3, seed=5)
        second = erdos_renyi_graph(20, 0.3, seed=5)
        assert first == second
        with pytest.raises(InvalidParameterError):
            erdos_renyi_graph(-1, 0.5)
        with pytest.raises(InvalidParameterError):
            erdos_renyi_graph(10, 1.5)

    def test_power_law_cluster_graph(self):
        graph = power_law_cluster_graph(60, attachment=3, seed=2)
        assert graph.num_vertices == 60
        assert graph.num_edges >= 3 * 57
        with pytest.raises(InvalidParameterError):
            power_law_cluster_graph(3, attachment=5)

    def test_planted_nucleus_graph_structure(self):
        graph = planted_nucleus_graph(
            num_communities=2, community_size=5, intra_density=1.0,
            background_vertices=10, background_density=0.0,
            bridges_per_community=1, seed=0,
        )
        assert graph.num_vertices == 2 * 5 + 10
        # the two planted 5-cliques contribute 2 * 10 intra edges + 2 bridges
        assert graph.num_edges == 22

    def test_planted_nucleus_graph_custom_sizes(self):
        graph = planted_nucleus_graph(
            community_sizes=[6, 4], intra_density=1.0,
            background_vertices=0, bridges_per_community=0, seed=0,
        )
        assert graph.num_vertices == 10
        assert graph.num_edges == 15 + 6

    def test_planted_nucleus_graph_invalid(self):
        with pytest.raises(InvalidParameterError):
            planted_nucleus_graph(num_communities=0)
        with pytest.raises(InvalidParameterError):
            planted_nucleus_graph(community_sizes=[3])

    def test_overlapping_community_graph(self):
        graph = overlapping_community_graph(
            num_communities=3, community_size=6, overlap=2, intra_density=1.0, seed=0
        )
        assert graph.num_vertices == 6 + 2 * 4
        with pytest.raises(InvalidParameterError):
            overlapping_community_graph(overlap=10, community_size=5)

    def test_assign_jaccard_probabilities(self):
        graph = clique_graph(5, probability=0.1)
        graph.add_edge(0, 99, 0.1)  # a pendant edge has Jaccard 0
        reassigned = assign_jaccard_probabilities(graph, floor=0.05)
        # clique edges share 3 of 4+ neighbors -> high probability
        assert reassigned.edge_probability(0, 1) > 0.5
        assert reassigned.edge_probability(0, 99) == 0.05
        with pytest.raises(InvalidParameterError):
            assign_jaccard_probabilities(graph, floor=0.0)

    def test_generator_spec_build_and_seed_override(self):
        spec = GeneratorSpec(
            name="er", generator=erdos_renyi_graph,
            parameters={"num_vertices": 15, "edge_fraction": 0.4, "seed": 1},
        )
        default = spec.build()
        overridden = spec.build(seed=2)
        assert default == spec.build()
        assert default != overridden

    @given(seed=st.integers(0, 30))
    @settings(max_examples=15, deadline=None)
    def test_generators_are_deterministic_given_seed(self, seed):
        assert planted_nucleus_graph(seed=seed) == planted_nucleus_graph(seed=seed)


class TestStatistics:
    def test_graph_statistics_fields(self, paper_figure1_graph):
        stats = graph_statistics(paper_figure1_graph, name="figure1")
        assert stats.name == "figure1"
        assert stats.num_vertices == 7
        assert stats.num_edges == 12
        assert stats.max_degree == paper_figure1_graph.max_degree()
        assert stats.num_triangles == 8
        assert 0.0 < stats.average_probability <= 1.0

    def test_statistics_table_formatting(self, triangle_graph, four_clique_graph):
        rows = [
            graph_statistics(triangle_graph, "triangle"),
            graph_statistics(four_clique_graph, "clique4"),
        ]
        table = format_statistics_table(rows)
        assert "triangle" in table and "clique4" in table
        assert len(table.splitlines()) == 4
