"""Tests for the vectorized possible-world sampling engine.

Three layers of guarantees:

1. **Exact verification parity** — for any boolean world-matrix row, the
   batched predicates agree with the dict-backed reference predicates
   (:func:`is_k_nucleus`, :func:`k_nucleus_triangle_groups`) on the
   materialized world, world by world.
2. **Statistical sampling parity** — the dict sampler and the matrix sampler
   draw from the same distribution, so their per-triangle probability
   estimates agree within the Hoeffding bound (and, on graphs small enough
   to enumerate, with the exact probability).
3. **Sharding invariance** — ``n_jobs > 1`` returns results bit-identical to
   ``n_jobs = 1`` for a fixed seed, because the matrix is sampled before it
   is split.
"""

from __future__ import annotations

import random

import numpy as np
import pytest

from repro.core.global_nucleus import global_nucleus_decomposition
from repro.core.weak_nucleus import (
    triangle_weak_scores,
    triangle_weak_scores_matrix,
    weak_nucleus_decomposition,
)
from repro.deterministic.cliques import triangle_clique_index
from repro.deterministic.nucleus import is_k_nucleus, k_nucleus_triangle_groups
from repro.exceptions import InvalidParameterError
from repro.graph.generators import clique_graph, planted_nucleus_graph
from repro.graph.possible_worlds import enumerate_worlds, sample_world
from repro.graph.probabilistic_graph import ProbabilisticGraph
from repro.sampling.monte_carlo import hoeffding_error_bound
from repro.sampling.world_matrix import (
    CandidateWorldIndex,
    WorldShardPool,
    as_numpy_generator,
    global_triangle_counts,
    nucleus_world_mask,
    sample_world_matrix,
    weak_membership_counts,
    world_from_row,
)


@pytest.fixture
def paper_example1_graph() -> ProbabilisticGraph:
    """Figure 3a: the 4-clique {1, 2, 3, 5} with one 0.5-probability edge."""
    graph = ProbabilisticGraph()
    edges = [(1, 2, 1.0), (1, 3, 1.0), (1, 5, 1.0), (2, 3, 1.0), (2, 5, 1.0), (3, 5, 0.5)]
    for u, v, p in edges:
        graph.add_edge(u, v, p)
    return graph


def small_planted() -> ProbabilisticGraph:
    return planted_nucleus_graph(
        num_communities=2,
        community_size=5,
        intra_density=1.0,
        background_vertices=6,
        background_density=0.2,
        bridges_per_community=2,
        seed=9,
    )


class TestSampleWorldMatrix:
    def test_shape_and_dtype(self, four_clique_graph):
        index = CandidateWorldIndex.from_graph(four_clique_graph)
        worlds = index.sample(50, seed=0)
        assert worlds.shape == (50, index.num_edges)
        assert worlds.dtype == np.bool_

    def test_marginals_match_edge_probabilities(self):
        graph = ProbabilisticGraph([("a", "b", 0.9), ("b", "c", 0.5), ("a", "c", 0.1)])
        index = CandidateWorldIndex.from_graph(graph)
        worlds = sample_world_matrix(index.edge_probabilities, 4000, seed=3)
        frequencies = worlds.mean(axis=0)
        epsilon = hoeffding_error_bound(4000, delta=0.01)
        for frequency, probability in zip(frequencies, index.edge_probabilities):
            assert abs(frequency - probability) <= epsilon

    def test_certain_edges_always_present(self):
        graph = ProbabilisticGraph([(0, 1, 1.0), (1, 2, 1.0), (0, 2, 0.5)])
        index = CandidateWorldIndex.from_graph(graph)
        worlds = index.sample(64, seed=1)
        certain_columns = np.flatnonzero(index.edge_probabilities == 1.0)
        assert certain_columns.size == 2
        assert worlds[:, certain_columns].all()

    def test_rejects_non_positive_world_count(self, four_clique_graph):
        index = CandidateWorldIndex.from_graph(four_clique_graph)
        with pytest.raises(InvalidParameterError):
            index.sample(0)

    def test_generator_conversions(self):
        assert isinstance(as_numpy_generator(seed=3), np.random.Generator)
        generator = np.random.default_rng(5)
        assert as_numpy_generator(generator) is generator
        # A seeded random.Random converts deterministically.
        first = as_numpy_generator(random.Random(11)).random()
        second = as_numpy_generator(random.Random(11)).random()
        assert first == second
        with pytest.raises(InvalidParameterError):
            as_numpy_generator(rng="not an rng")


class TestCandidateWorldIndex:
    def test_structure_counts_match_dict_enumeration(self):
        graph = small_planted()
        index = CandidateWorldIndex.from_graph(graph)
        by_triangle, by_clique = triangle_clique_index(graph)
        assert index.num_triangles == len(by_triangle)
        assert index.num_cliques == len(by_clique)
        assert set(index.triangle_labels()) == set(by_triangle)

    def test_triangle_edges_are_consistent(self, five_clique_graph):
        index = CandidateWorldIndex.from_graph(five_clique_graph)
        for row, (u, v, w) in zip(index.triangle_edges, index.triangles):
            endpoints = {
                (int(index.edge_u[column]), int(index.edge_v[column])) for column in row
            }
            assert endpoints == {(int(u), int(v)), (int(u), int(w)), (int(v), int(w))}

    def test_world_from_row_round_trip(self, four_clique_graph):
        index = CandidateWorldIndex.from_graph(four_clique_graph)
        worlds = index.sample(10, seed=2)
        for i in range(10):
            world = world_from_row(index, worlds[i])
            assert world.num_edges == int(worlds[i].sum())
            assert set(world.vertices()) == set(four_clique_graph.vertices())

    def test_triangle_free_graph_has_empty_index(self):
        graph = ProbabilisticGraph([(0, 1, 0.5), (1, 2, 0.5), (2, 3, 0.5)])
        index = CandidateWorldIndex.from_graph(graph)
        assert index.num_triangles == 0 and index.num_cliques == 0
        worlds = index.sample(8, seed=0)
        assert not nucleus_world_mask(index, worlds, 1).any()
        assert weak_membership_counts(index, worlds, 1).size == 0


class TestExactVerificationParity:
    """The batched predicates agree with the dict predicates world-by-world."""

    @pytest.mark.parametrize(
        "graph_builder,k",
        [
            (lambda: clique_graph(4, probability=0.8), 1),
            (lambda: clique_graph(5, probability=0.7), 2),
            (lambda: clique_graph(6, probability=0.6), 1),
            (small_planted, 1),
        ],
    )
    def test_nucleus_mask_matches_is_k_nucleus(self, graph_builder, k):
        index = CandidateWorldIndex.from_graph(graph_builder())
        worlds = index.sample(150, seed=13)
        mask = nucleus_world_mask(index, worlds, k)
        for i in range(worlds.shape[0]):
            world = world_from_row(index, worlds[i])
            assert bool(mask[i]) == is_k_nucleus(world, k), f"world {i}"

    @pytest.mark.parametrize(
        "graph_builder,k",
        [
            (lambda: clique_graph(5, probability=0.7), 1),
            (lambda: clique_graph(5, probability=0.7), 2),
            (small_planted, 1),
        ],
    )
    def test_weak_membership_matches_triangle_groups(self, graph_builder, k):
        index = CandidateWorldIndex.from_graph(graph_builder())
        worlds = index.sample(120, seed=17)
        labels = index.triangle_labels()
        counts = np.zeros(index.num_triangles, dtype=np.int64)
        for i in range(worlds.shape[0]):
            world = world_from_row(index, worlds[i])
            groups = k_nucleus_triangle_groups(world, k)
            for group in groups:
                for triangle in group:
                    counts[labels.index(triangle)] += 1
        batched = weak_membership_counts(index, worlds, k)
        assert batched.tolist() == counts.tolist()

    def test_counts_threshold_reproduces_dict_decision(self, paper_example1_graph):
        index = CandidateWorldIndex.from_graph(paper_example1_graph)
        worlds = index.sample(400, seed=3)
        counts = global_triangle_counts(index, worlds, 1)
        # The only nucleus world is the full clique (probability 0.5), so
        # every triangle's estimate must clear θ = 0.42 comfortably.
        assert np.all(counts / 400 >= 0.42)


def _contains_triangle(world: ProbabilisticGraph, triangle) -> bool:
    u, v, w = triangle
    return world.has_edge(u, v) and world.has_edge(u, w) and world.has_edge(v, w)


class TestStatisticalParity:
    """Dict sampling and matrix sampling agree within the Hoeffding bound."""

    def test_global_estimates_within_hoeffding_of_exact(self):
        graph = clique_graph(4, probability=0.8)
        k, n_samples, delta = 1, 2000, 0.01
        epsilon = hoeffding_error_bound(n_samples, delta)

        index = CandidateWorldIndex.from_graph(graph)
        labels = index.triangle_labels()

        # Exact per-triangle probability by exhaustive world enumeration.
        exact = dict.fromkeys(labels, 0.0)
        for world, probability in enumerate_worlds(graph):
            if not is_k_nucleus(world, k):
                continue
            for triangle in labels:
                if _contains_triangle(world, triangle):
                    exact[triangle] += probability

        # Matrix estimate.
        worlds = index.sample(n_samples, seed=29)
        matrix_estimates = dict(
            zip(labels, (global_triangle_counts(index, worlds, k) / n_samples).tolist())
        )

        # Dict estimate with the reference one-world-at-a-time sampler.
        rng = random.Random(31)
        dict_counts = dict.fromkeys(labels, 0)
        for _ in range(n_samples):
            world = sample_world(graph, rng=rng)
            if not is_k_nucleus(world, k):
                continue
            for triangle in labels:
                if _contains_triangle(world, triangle):
                    dict_counts[triangle] += 1

        for triangle in labels:
            dict_estimate = dict_counts[triangle] / n_samples
            assert abs(matrix_estimates[triangle] - exact[triangle]) <= epsilon
            assert abs(dict_estimate - exact[triangle]) <= epsilon
            assert abs(matrix_estimates[triangle] - dict_estimate) <= 2 * epsilon

    def test_weak_scores_within_hoeffding(self):
        graph = clique_graph(5, probability=0.7)
        k, n_samples, delta = 1, 1500, 0.01
        epsilon = hoeffding_error_bound(n_samples, delta)
        dict_scores = triangle_weak_scores(graph, k, n_samples, random.Random(23))
        matrix_scores = triangle_weak_scores_matrix(graph, k, n_samples, seed=37)
        assert set(dict_scores) == set(matrix_scores)
        for triangle, score in dict_scores.items():
            assert abs(score - matrix_scores[triangle]) <= 2 * epsilon


class TestSharding:
    def test_global_n_jobs_identical_to_serial(self):
        graph = small_planted()
        kwargs = dict(k=1, theta=0.1, n_samples=120, seed=5, backend="csr")
        serial = global_nucleus_decomposition(graph, **kwargs, n_jobs=1)
        sharded = global_nucleus_decomposition(graph, **kwargs, n_jobs=2)
        assert [n.triangles for n in serial] == [n.triangles for n in sharded]

    def test_weak_n_jobs_identical_to_serial(self):
        graph = small_planted()
        kwargs = dict(k=1, theta=0.1, n_samples=120, seed=5, backend="csr")
        serial = weak_nucleus_decomposition(graph, **kwargs, n_jobs=1)
        sharded = weak_nucleus_decomposition(graph, **kwargs, n_jobs=3)
        assert [n.triangles for n in serial] == [n.triangles for n in sharded]

    def test_pool_counts_match_serial_counts(self):
        index = CandidateWorldIndex.from_graph(clique_graph(5, probability=0.7))
        worlds = index.sample(90, seed=41)
        serial = global_triangle_counts(index, worlds, 1)
        with WorldShardPool(2) as pool:
            sharded = global_triangle_counts(index, worlds, 1, pool=pool)
            weak_serial = weak_membership_counts(index, worlds, 1)
            weak_sharded = weak_membership_counts(index, worlds, 1, pool=pool)
        assert serial.tolist() == sharded.tolist()
        assert weak_serial.tolist() == weak_sharded.tolist()

    def test_invalid_n_jobs(self):
        with pytest.raises(InvalidParameterError):
            WorldShardPool(0)
        with pytest.raises(InvalidParameterError):
            weak_nucleus_decomposition(
                clique_graph(4), k=1, theta=0.5, n_samples=5, backend="dict", n_jobs=2
            )


class TestBackendEndToEnd:
    def test_paper_example1_global_nucleus_csr_backend(self, paper_example1_graph):
        nuclei = global_nucleus_decomposition(
            paper_example1_graph, k=1, theta=0.42, n_samples=400, seed=3, backend="csr"
        )
        assert len(nuclei) == 1
        assert set(nuclei[0].subgraph.vertices()) == {1, 2, 3, 5}
        assert nuclei[0].mode == "global"

    def test_numpy_generator_accepted_by_dict_backend(self, five_clique_graph):
        # A numpy Generator is converted to the dict engine's random.Random.
        nuclei = global_nucleus_decomposition(
            five_clique_graph,
            k=2,
            theta=0.9,
            n_samples=30,
            rng=np.random.default_rng(8),
            backend="dict",
        )
        assert len(nuclei) == 1

    def test_random_random_accepted_by_csr_backend(self, five_clique_graph):
        nuclei = weak_nucleus_decomposition(
            five_clique_graph,
            k=2,
            theta=0.9,
            n_samples=30,
            rng=random.Random(4),
            backend="csr",
        )
        assert len(nuclei) == 1
