"""Tier-1 pins for the adaptive Monte-Carlo sampling engine.

Covers the statistical machinery of :mod:`repro.sampling.adaptive` (bound
math, δ-spending, chunk scheduling), the knob validation surface (exact
error-message pins — these strings are API for scripts matching stderr), the
unit-level sequential decisions on hand-analysable candidates, the driver
integration (``sampling="fixed"`` parity, per-seed determinism, ``n_jobs``
invariance), and the telemetry the engine records.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from graph_factories import small_er_graph

from repro.core.global_nucleus import (
    global_nucleus_decomposition,
    resolve_sampling_options,
)
from repro.core.weak_nucleus import weak_nucleus_decomposition
from repro.exceptions import InvalidParameterError
from repro.experiments.pipeline import RunConfig
from repro.graph.generators import clique_graph
from repro.obs import config as obs_config
from repro.obs.metrics import REGISTRY as obs_registry
from repro.sampling.adaptive import (
    SAMPLING_MODES,
    WORLD_COUNT_BUCKETS,
    AdaptiveOutcome,
    AdaptiveSettings,
    adaptive_global_verify,
    adaptive_weak_scores,
    chunk_schedule,
    decision_radius,
    empirical_bernstein_radius,
    hoeffding_radius,
    resolve_adaptive_settings,
    stage_delta,
)
from repro.sampling.world_matrix import CandidateWorldIndex


def _nuclei_key(nuclei):
    def edge_set(nucleus):
        return sorted((u, v) for u, v, _ in nucleus.subgraph.edges())

    return sorted(edge_set(nucleus) for nucleus in nuclei)


def _driver_graph():
    return small_er_graph(12, 0.5, seed=0, probabilities=(0.5, 1.0))


class TestBoundMath:
    def test_hoeffding_pin(self):
        # sqrt(ln(2/0.05) / (2 * 100))
        assert hoeffding_radius(100, 0.05) == pytest.approx(0.13581015157406195)

    def test_hoeffding_shrinks_with_n(self):
        radii = [hoeffding_radius(n, 0.05) for n in (10, 100, 1000, 10000)]
        assert radii == sorted(radii, reverse=True)

    def test_empirical_bernstein_pins(self):
        # mean 0.5: sqrt(2 * 0.25 * (100/99) * ln(60) / 100) + 3 ln(60) / 100
        assert empirical_bernstein_radius(100, 0.5, 0.05) == pytest.approx(0.2666305729)
        # mean 0: the variance term vanishes, only 3 ln(3/δ)/n remains.
        assert empirical_bernstein_radius(100, 0.0, 0.05) == pytest.approx(0.1228303369)

    def test_empirical_bernstein_beats_hoeffding_near_the_edges(self):
        # For extreme means and enough samples the variance-adaptive bound
        # wins — that is the whole point of including it.
        assert empirical_bernstein_radius(1000, 0.02, 0.05) < hoeffding_radius(1000, 0.05)

    def test_decision_radius_is_the_elementwise_min_at_half_delta(self):
        means = np.array([0.0, 0.02, 0.5, 0.98, 1.0])
        radius = decision_radius(1000, means, 0.05)
        expected = np.minimum(
            hoeffding_radius(1000, 0.025),
            empirical_bernstein_radius(1000, means, 0.025),
        )
        np.testing.assert_allclose(radius, expected)

    def test_stage_delta_pins_and_telescoping(self):
        assert stage_delta(0.05, 1) == pytest.approx(0.025)
        assert stage_delta(0.05, 2) == pytest.approx(0.05 / 6)
        total = sum(stage_delta(0.05, t) for t in range(1, 10_000))
        assert total < 0.05
        assert total == pytest.approx(0.05, rel=1e-3)

    @pytest.mark.parametrize("bad_delta", [0.0, 1.0, -0.1, 1.5])
    def test_delta_range_is_enforced(self, bad_delta):
        with pytest.raises(InvalidParameterError):
            stage_delta(bad_delta, 1)
        with pytest.raises(InvalidParameterError):
            hoeffding_radius(10, bad_delta)
        with pytest.raises(InvalidParameterError):
            empirical_bernstein_radius(10, 0.5, bad_delta)

    def test_stage_must_be_positive(self):
        with pytest.raises(InvalidParameterError, match="stage must be >= 1, got 0"):
            stage_delta(0.05, 0)


class TestChunkSchedule:
    def test_default_schedule_pin(self):
        assert chunk_schedule(400, 16, 2.0) == (16, 32, 64, 128, 160)

    def test_cap_below_initial_chunk(self):
        assert chunk_schedule(10, 16, 2.0) == (10,)
        assert chunk_schedule(50, 64, 2.0) == (50,)

    def test_growth_one_gives_constant_chunks(self):
        assert chunk_schedule(100, 16, 1.0) == (16, 16, 16, 16, 16, 16, 4)

    @pytest.mark.parametrize("cap", [1, 7, 16, 17, 100, 399, 400, 401, 1000])
    def test_schedule_sums_exactly_to_the_cap(self, cap):
        schedule = chunk_schedule(cap)
        assert sum(schedule) == cap
        assert all(size >= 1 for size in schedule)

    def test_validation(self):
        with pytest.raises(
            InvalidParameterError, match="n_worlds_max must be a positive integer"
        ):
            chunk_schedule(0)
        with pytest.raises(
            InvalidParameterError, match="chunk_initial must be a positive integer"
        ):
            chunk_schedule(100, 0)
        with pytest.raises(
            InvalidParameterError, match="chunk_growth must be a finite value >= 1"
        ):
            chunk_schedule(100, 16, 0.5)


class TestSettingsValidation:
    """Exact error-message pins: these strings are matched by callers."""

    def test_fixed_returns_none_adaptive_returns_settings(self):
        assert resolve_adaptive_settings("fixed") is None
        settings = resolve_adaptive_settings("adaptive")
        assert isinstance(settings, AdaptiveSettings)
        assert settings.confidence == 0.95
        assert settings.delta == pytest.approx(0.05)

    def test_cap_defaults_to_twice_the_fixed_budget(self):
        assert resolve_adaptive_settings("adaptive").n_worlds_max == 400
        assert resolve_adaptive_settings("adaptive", n_samples=50).n_worlds_max == 100
        explicit = resolve_adaptive_settings("adaptive", n_worlds_max=64, n_samples=50)
        assert explicit.n_worlds_max == 64
        assert explicit.schedule() == chunk_schedule(64)

    def test_unknown_sampling_mode(self):
        with pytest.raises(
            InvalidParameterError,
            match=r"sampling must be one of \('fixed', 'adaptive'\), got 'bogus'",
        ):
            resolve_adaptive_settings("bogus")
        assert SAMPLING_MODES == ("fixed", "adaptive")

    @pytest.mark.parametrize("bad", [0.0, 1.0, -0.5, 2.0])
    def test_confidence_out_of_range(self, bad):
        with pytest.raises(
            InvalidParameterError,
            match=rf"confidence must be a finite value in \(0, 1\), got {bad!r}",
        ):
            resolve_adaptive_settings("adaptive", confidence=bad)

    @pytest.mark.parametrize("bad", [float("nan"), float("inf")])
    def test_confidence_must_be_finite(self, bad):
        with pytest.raises(InvalidParameterError, match="confidence must be a finite number"):
            resolve_adaptive_settings("adaptive", confidence=bad)

    @pytest.mark.parametrize("bad", [0, -5, True, 2.5, "16"])
    def test_n_worlds_max_must_be_a_positive_int(self, bad):
        with pytest.raises(
            InvalidParameterError, match="n_worlds_max must be a positive integer"
        ):
            resolve_adaptive_settings("adaptive", n_worlds_max=bad)

    def test_chunk_knob_validation(self):
        with pytest.raises(
            InvalidParameterError,
            match="chunk_initial must be a positive integer, got 0",
        ):
            resolve_adaptive_settings("adaptive", chunk_initial=0)
        with pytest.raises(
            InvalidParameterError,
            match="chunk_growth must be a finite value >= 1, got 0.9",
        ):
            resolve_adaptive_settings("adaptive", chunk_growth=0.9)
        with pytest.raises(
            InvalidParameterError, match="chunk_growth must be a finite number"
        ):
            resolve_adaptive_settings("adaptive", chunk_growth=float("nan"))

    def test_fixed_mode_still_validates_the_knobs(self):
        # Bad knobs fail fast even when adaptive is off: a typo'd confidence
        # should never ride along silently.
        with pytest.raises(InvalidParameterError):
            resolve_adaptive_settings("fixed", confidence=1.5)

    def test_adaptive_requires_the_csr_backend(self):
        with pytest.raises(
            InvalidParameterError,
            match='sampling="adaptive" requires backend="csr"',
        ):
            resolve_sampling_options("dict", 1, None, 0, sampling="adaptive")

    def test_run_config_rejects_adaptive_on_the_dict_backend(self):
        with pytest.raises(InvalidParameterError, match='requires backend="csr"'):
            RunConfig(backend="dict", sampling="adaptive")

    def test_run_config_sampling_kwargs(self):
        assert RunConfig().sampling_kwargs() == {}
        assert RunConfig(sampling="adaptive", confidence=0.9).sampling_kwargs() == {
            "sampling": "adaptive",
            "confidence": 0.9,
        }
        assert RunConfig(sampling="adaptive", n_worlds_max=64).sampling_kwargs() == {
            "sampling": "adaptive",
            "confidence": 0.95,
            "n_worlds_max": 64,
        }


class TestAdaptiveGlobalVerify:
    def test_certain_clique_accepts_after_one_chunk(self):
        index = CandidateWorldIndex.from_graph(clique_graph(4, probability=1.0))
        settings = AdaptiveSettings(confidence=0.95, n_worlds_max=400)
        passes, outcome = adaptive_global_verify(index, 1, 0.5, settings, seed=0)
        assert passes is True
        assert outcome == AdaptiveOutcome(worlds=16, chunks=1, early_stop=True)

    def test_hopeless_clique_rejects_after_one_chunk(self):
        index = CandidateWorldIndex.from_graph(clique_graph(4, probability=0.01))
        settings = AdaptiveSettings(confidence=0.95, n_worlds_max=400)
        passes, outcome = adaptive_global_verify(index, 1, 0.5, settings, seed=0)
        assert passes is False
        assert outcome == AdaptiveOutcome(worlds=16, chunks=1, early_stop=True)

    def test_point_estimate_decides_at_the_cap(self):
        # n_worlds_max=8 truncates the first chunk to 8 worlds; at θ = 0.6 the
        # stage-1 radius (≈0.56) cannot settle either direction, so the point
        # estimate (1.0 ≥ 0.6) decides and early_stop stays False.
        index = CandidateWorldIndex.from_graph(clique_graph(4, probability=1.0))
        settings = AdaptiveSettings(confidence=0.95, n_worlds_max=8)
        assert settings.schedule() == (8,)
        passes, outcome = adaptive_global_verify(index, 1, 0.6, settings, seed=0)
        assert passes is True
        assert outcome == AdaptiveOutcome(worlds=8, chunks=1, early_stop=False)

    def test_triangle_free_candidate_fails_without_sampling(self):
        graph = clique_graph(2, probability=1.0)  # a single edge
        index = CandidateWorldIndex.from_graph(graph)
        settings = AdaptiveSettings()
        passes, outcome = adaptive_global_verify(index, 1, 0.5, settings, seed=0)
        assert passes is False
        assert outcome == AdaptiveOutcome(worlds=0, chunks=0, early_stop=True)

    def test_deterministic_per_seed(self):
        index = CandidateWorldIndex.from_graph(clique_graph(4, probability=0.8))
        settings = AdaptiveSettings(confidence=0.95, n_worlds_max=400)
        first = adaptive_global_verify(index, 1, 0.4, settings, seed=7)
        second = adaptive_global_verify(index, 1, 0.4, settings, seed=7)
        assert first == second


class TestAdaptiveWeakScores:
    def test_certain_clique_settles_every_triangle_in_one_chunk(self):
        index = CandidateWorldIndex.from_graph(clique_graph(4, probability=1.0))
        settings = AdaptiveSettings(confidence=0.95, n_worlds_max=400)
        means, qualifying, outcome = adaptive_weak_scores(index, 1, 0.5, settings, seed=0)
        assert means.shape == qualifying.shape == (index.num_triangles,)
        np.testing.assert_allclose(means, 1.0)
        assert qualifying.all()
        assert outcome == AdaptiveOutcome(worlds=16, chunks=1, early_stop=True)

    def test_point_estimates_decide_undecided_triangles_at_the_cap(self):
        index = CandidateWorldIndex.from_graph(clique_graph(4, probability=1.0))
        settings = AdaptiveSettings(confidence=0.95, n_worlds_max=8)
        means, qualifying, outcome = adaptive_weak_scores(index, 1, 0.6, settings, seed=0)
        np.testing.assert_allclose(means, 1.0)
        assert qualifying.all()
        assert outcome == AdaptiveOutcome(worlds=8, chunks=1, early_stop=False)

    def test_empty_candidate(self):
        index = CandidateWorldIndex.from_graph(clique_graph(2, probability=1.0))
        means, qualifying, outcome = adaptive_weak_scores(
            index, 1, 0.5, AdaptiveSettings(), seed=0
        )
        assert means.size == 0 and qualifying.size == 0
        assert outcome == AdaptiveOutcome(worlds=0, chunks=0, early_stop=True)

    def test_deterministic_per_seed(self):
        index = CandidateWorldIndex.from_graph(clique_graph(4, probability=0.8))
        settings = AdaptiveSettings(confidence=0.95, n_worlds_max=400)
        m1, q1, o1 = adaptive_weak_scores(index, 1, 0.4, settings, seed=3)
        m2, q2, o2 = adaptive_weak_scores(index, 1, 0.4, settings, seed=3)
        np.testing.assert_array_equal(m1, m2)
        np.testing.assert_array_equal(q1, q2)
        assert o1 == o2


class TestDriverIntegration:

    def test_sampling_fixed_is_the_default_global(self):
        graph = _driver_graph()
        kwargs = dict(k=1, theta=0.4, n_samples=60, seed=7, backend="csr")
        default = global_nucleus_decomposition(graph, **kwargs)
        explicit = global_nucleus_decomposition(graph, sampling="fixed", **kwargs)
        assert _nuclei_key(default) == _nuclei_key(explicit)

    def test_sampling_fixed_is_the_default_weak(self):
        graph = _driver_graph()
        kwargs = dict(k=1, theta=0.4, n_samples=60, seed=7, backend="csr")
        default = weak_nucleus_decomposition(graph, **kwargs)
        explicit = weak_nucleus_decomposition(graph, sampling="fixed", **kwargs)
        assert _nuclei_key(default) == _nuclei_key(explicit)

    @pytest.mark.parametrize("run", [global_nucleus_decomposition, weak_nucleus_decomposition])
    def test_adaptive_deterministic_per_seed(self, run):
        graph = _driver_graph()
        kwargs = dict(
            k=1, theta=0.4, n_samples=60, seed=11, backend="csr", sampling="adaptive"
        )
        assert _nuclei_key(run(graph, **kwargs)) == _nuclei_key(run(graph, **kwargs))

    @pytest.mark.parametrize("run", [global_nucleus_decomposition, weak_nucleus_decomposition])
    def test_adaptive_invariant_under_n_jobs(self, run):
        graph = _driver_graph()
        kwargs = dict(
            k=1, theta=0.4, n_samples=60, seed=11, backend="csr", sampling="adaptive"
        )
        serial = run(graph, n_jobs=1, **kwargs)
        sharded = run(graph, n_jobs=2, **kwargs)
        assert _nuclei_key(serial) == _nuclei_key(sharded)

    @pytest.mark.parametrize("run", [global_nucleus_decomposition, weak_nucleus_decomposition])
    def test_adaptive_rejects_the_dict_backend(self, run):
        with pytest.raises(
            InvalidParameterError, match='sampling="adaptive" requires backend="csr"'
        ):
            run(_driver_graph(), k=1, theta=0.4, backend="dict", sampling="adaptive")

    @pytest.mark.parametrize("run", [global_nucleus_decomposition, weak_nucleus_decomposition])
    def test_bad_knobs_fail_before_sampling(self, run):
        with pytest.raises(InvalidParameterError, match="confidence must be"):
            run(
                _driver_graph(),
                k=1,
                theta=0.4,
                backend="csr",
                sampling="adaptive",
                confidence=1.0,
            )


class TestTelemetry:
    @staticmethod
    def _state(model):
        histogram = obs_registry.histogram(
            "repro_sampling_worlds_per_candidate",
            buckets=WORLD_COUNT_BUCKETS,
            model=model,
        )
        early = obs_registry.counter("repro_sampling_early_stops_total", model=model)
        exhausted = obs_registry.counter("repro_sampling_exhausted_total", model=model)
        return histogram.count, histogram.sum, early.value, exhausted.value

    def _run_both(self):
        index = CandidateWorldIndex.from_graph(clique_graph(4, probability=1.0))
        adaptive_global_verify(index, 1, 0.5, AdaptiveSettings(n_worlds_max=400), seed=0)
        adaptive_global_verify(index, 1, 0.6, AdaptiveSettings(n_worlds_max=8), seed=0)

    def test_counters_and_histogram_record_when_enabled(self):
        was_enabled = obs_config.enabled()
        obs_config.configure(enabled=True)
        try:
            count0, sum0, early0, exhausted0 = self._state("global")
            self._run_both()
            count1, sum1, early1, exhausted1 = self._state("global")
        finally:
            obs_config.configure(enabled=was_enabled)
        assert count1 - count0 == 2
        assert sum1 - sum0 == pytest.approx(16 + 8)
        assert early1 - early0 == 1  # the θ=0.5 accept settled in chunk 1
        assert exhausted1 - exhausted0 == 1  # the capped run fell to the point estimate

    def test_silent_when_disabled(self):
        was_enabled = obs_config.enabled()
        obs_config.configure(enabled=False)
        try:
            before = self._state("global")
            self._run_both()
            after = self._state("global")
        finally:
            obs_config.configure(enabled=was_enabled)
        assert after == before

    def test_worlds_histogram_visible_in_snapshots(self):
        was_enabled = obs_config.enabled()
        obs_config.configure(enabled=True)
        try:
            self._run_both()
            snapshot = obs_registry.snapshot()
        finally:
            obs_config.configure(enabled=was_enabled)
        names = {metric["name"] for metric in snapshot["metrics"]}
        assert "repro_sampling_worlds_per_candidate" in names
        assert "repro_sampling_early_stops_total" in names
        assert "repro_sampling_exhausted_total" in names

    def test_world_count_buckets_are_powers_of_two(self):
        assert WORLD_COUNT_BUCKETS == tuple(float(2**i) for i in range(15))
        assert all(
            math.log2(bucket) == int(math.log2(bucket)) for bucket in WORLD_COUNT_BUCKETS
        )
