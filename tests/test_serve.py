"""Tests for the query service (repro.serve).

Covers the wire protocol (validation, framing, typed error mapping), the
micro-batching queue (coalescing, linger flushes, poisoned-batch fallback),
the service (batched/serial parity, response tagging, stats), hot reload
(lineage acceptance rules, the file watcher, and the no-torn-reads
concurrency guarantee), the asyncio JSON-lines server, and the
``repro-serve`` CLI (typed one-line errors, subprocess round trip).

All async tests drive a private event loop via ``asyncio.run`` — no
pytest-asyncio dependency.
"""

from __future__ import annotations

import asyncio
import json
import os
import socket
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.exceptions import (
    IndexCompatibilityError,
    IndexFormatError,
    InvalidParameterError,
    VertexNotFoundError,
)
from repro.graph.generators import clique_graph, planted_nucleus_graph
from repro.index import EdgeUpdate, NucleusIndex, apply_updates, build_local_index
from repro.query import NucleusQueryEngine
from repro.serve import (
    BatchingConfig,
    MalformedRequestError,
    MicroBatcher,
    QueryService,
    create_server,
    decode_request,
    encode_response,
    execute,
)
from repro.serve.cli import main as serve_main
from repro.serve.protocol import (
    MAX_VERTICES_PER_REQUEST,
    error_payload,
    validate_request,
)

REPO_ROOT = Path(__file__).resolve().parent.parent
THETA = 0.4


@pytest.fixture(scope="module")
def graph():
    return planted_nucleus_graph(
        num_communities=2,
        community_size=6,
        intra_density=1.0,
        background_vertices=8,
        background_density=0.15,
        bridges_per_community=2,
        probability_model=lambda rng: 0.9,
        seed=7,
    )


@pytest.fixture(scope="module")
def index(graph):
    return build_local_index(graph, THETA)


@pytest.fixture(scope="module")
def index_path(index, tmp_path_factory) -> Path:
    path = tmp_path_factory.mktemp("serve") / "planted.idx.npz"
    index.save(path, compress=False)
    return path


def make_service(index, **kwargs) -> QueryService:
    kwargs.setdefault("batching", BatchingConfig(max_batch=32, max_linger=0.001))
    return QueryService(index, **kwargs)


# --------------------------------------------------------------------------- #
# protocol
# --------------------------------------------------------------------------- #
class TestProtocol:
    def test_decode_encode_round_trip(self):
        line = encode_response({"id": 1, "ok": True, "result": [2]})
        assert line.endswith(b"\n")
        assert decode_request(line) == {"id": 1, "ok": True, "result": [2]}

    @pytest.mark.parametrize(
        "raw",
        [b"not json\n", b"\xff\xfe\n", b"[1, 2]\n", b'"just a string"\n'],
    )
    def test_decode_rejects_junk(self, raw):
        with pytest.raises(MalformedRequestError):
            decode_request(raw)

    @pytest.mark.parametrize(
        "request_obj",
        [
            {},  # no op
            {"op": 7},  # op not a string
            {"op": "no_such_op"},
            {"op": "max_score"},  # missing vertices
            {"op": "max_score", "vertices": []},
            {"op": "max_score", "vertices": "abc"},
            {"op": "max_score", "vertices": [True]},
            {"op": "max_score", "vertices": [1.5]},
            {"op": "contains", "vertices": [0]},  # missing k
            {"op": "contains", "vertices": [0], "k": -1},
            {"op": "contains", "vertices": [0], "k": True},
            {"op": "top_nuclei", "n": -1},
            {"op": "top_nuclei", "n": 100_001},
            {"op": "top_nuclei", "by": "nonsense"},
            {"op": "nucleus_of", "seeds": [], "k": 0},
            "not a dict",
        ],
    )
    def test_validate_rejects_bad_requests(self, request_obj):
        with pytest.raises(MalformedRequestError):
            validate_request(request_obj)

    def test_vertex_limit_enforced(self):
        too_many = [0] * (MAX_VERTICES_PER_REQUEST + 1)
        with pytest.raises(MalformedRequestError, match="per-request limit"):
            validate_request({"op": "max_score", "vertices": too_many})

    def test_error_payload_is_typed_and_one_line(self):
        payload = error_payload(IndexFormatError("first line\nsecond line"))
        assert payload == {"type": "IndexFormatError", "message": "first line"}

    def test_error_payload_unwraps_keyerror_quotes(self):
        payload = error_payload(VertexNotFoundError("x"))
        assert payload["type"] == "VertexNotFoundError"
        # str(KeyError) would wrap the message in an extra layer of quotes.
        assert payload["message"] == "vertex 'x' is not in the graph"

    def test_execute_matches_engine(self, index):
        engine = NucleusQueryEngine(index)
        vertices = index.vertex_labels[:8]
        assert execute(engine, {"op": "max_score", "vertices": vertices}) == [
            engine.max_score(v) for v in vertices
        ]
        k = max(index.levels)
        assert execute(
            engine, {"op": "contains", "vertices": vertices, "k": k}
        ) == [engine.contains(v, k) for v in vertices]

    def test_execute_results_are_json_serialisable(self, index):
        engine = NucleusQueryEngine(index)
        k = max(index.levels)
        for request in (
            {"op": "max_score", "vertices": index.vertex_labels[:4]},
            {"op": "contains", "vertices": index.vertex_labels[:4], "k": k},
            {"op": "smallest_nucleus", "vertices": index.vertex_labels[:4], "k": k},
            {"op": "top_nuclei", "n": 3},
            {"op": "info"},
            {"op": "ping"},
        ):
            json.dumps(execute(engine, request))


# --------------------------------------------------------------------------- #
# micro-batching
# --------------------------------------------------------------------------- #
class TestMicroBatcher:
    def test_config_validation(self):
        with pytest.raises(InvalidParameterError):
            BatchingConfig(max_batch=0)
        with pytest.raises(InvalidParameterError):
            BatchingConfig(max_linger=-0.1)

    def test_concurrent_submits_coalesce(self):
        calls: list[list] = []

        def run_many(key, batch):
            calls.append(batch)
            return [params["x"] * 2 for params in batch]

        batcher = MicroBatcher(
            run_many, lambda key, p: p["x"] * 2, BatchingConfig(max_batch=64)
        )

        async def drive():
            return await asyncio.gather(
                *[batcher.submit(("double",), {"x": i}) for i in range(10)]
            )

        assert asyncio.run(drive()) == [i * 2 for i in range(10)]
        # All ten arrived in the same loop tick: one coalesced call.
        assert len(calls) == 1 and len(calls[0]) == 10
        assert batcher.stats()["largest_batch"] == 10

    def test_max_batch_triggers_immediate_flush(self):
        flushes: list[int] = []

        def run_many(key, batch):
            flushes.append(len(batch))
            return [0] * len(batch)

        batcher = MicroBatcher(
            run_many, lambda key, p: 0, BatchingConfig(max_batch=4, max_linger=60.0)
        )

        async def drive():
            # max_linger is a minute: only the max_batch trigger can flush.
            await asyncio.gather(
                *[batcher.submit(("op",), {"i": i}) for i in range(8)]
            )

        asyncio.run(asyncio.wait_for(drive(), timeout=5))
        assert flushes == [4, 4]

    def test_linger_flushes_partial_batch(self):
        batcher = MicroBatcher(
            lambda key, batch: [1] * len(batch),
            lambda key, p: 1,
            BatchingConfig(max_batch=1000, max_linger=0.01),
        )

        async def drive():
            return await asyncio.wait_for(batcher.submit(("op",), {}), timeout=5)

        assert asyncio.run(drive()) == 1

    def test_poisoned_batch_falls_back_per_request(self):
        def run_many(key, batch):
            if any(params["bad"] for params in batch):
                raise VertexNotFoundError("poison")
            return [params["i"] for params in batch]

        def run_one(key, params):
            if params["bad"]:
                raise VertexNotFoundError("poison")
            return params["i"]

        batcher = MicroBatcher(run_many, run_one, BatchingConfig(max_batch=8))

        async def drive():
            return await asyncio.gather(
                *[
                    batcher.submit(("op",), {"i": i, "bad": i == 3})
                    for i in range(8)
                ],
                return_exceptions=True,
            )

        results = asyncio.run(drive())
        assert [r for i, r in enumerate(results) if i != 3] == [
            i for i in range(8) if i != 3
        ]
        assert isinstance(results[3], VertexNotFoundError)
        assert batcher.stats()["fallback_batches"] == 1

    def test_single_entry_uses_direct_dispatch(self):
        many_calls = []
        batcher = MicroBatcher(
            lambda key, batch: many_calls.append(batch) or [0] * len(batch),
            lambda key, p: "solo",
            BatchingConfig(max_batch=1),
        )

        async def drive():
            return await batcher.submit(("op",), {})

        assert asyncio.run(drive()) == "solo"
        assert many_calls == []
        assert batcher.stats()["batches_flushed"] == 1


# --------------------------------------------------------------------------- #
# service
# --------------------------------------------------------------------------- #
def submit_all(service: QueryService, requests: list[dict]) -> list[dict]:
    async def drive():
        return await asyncio.gather(*[service.submit(dict(r)) for r in requests])

    return asyncio.run(drive())


class TestQueryService:
    def test_batched_serial_parity(self, index):
        vertices = index.vertex_labels
        k = max(index.levels)
        requests = []
        for i, v in enumerate(vertices):
            requests.append({"id": i, "op": "max_score", "vertices": [v]})
            requests.append(
                {"id": f"c{i}", "op": "contains", "vertices": [v], "k": k}
            )
        batched = submit_all(make_service(index), requests)
        serial = submit_all(
            QueryService(index, batching=BatchingConfig(max_batch=1)), requests
        )
        assert [r["result"] for r in batched] == [r["result"] for r in serial]
        assert all(r["ok"] for r in batched)

    def test_responses_are_tagged_with_revision(self, index):
        [response] = submit_all(make_service(index), [{"op": "ping"}])
        assert response["revision"] == index.revision
        assert response["cache_key"] == index.cache_key

    def test_typed_error_response(self, index):
        service = make_service(index)
        [response] = submit_all(
            service, [{"id": 9, "op": "max_score", "vertices": ["missing"]}]
        )
        assert response == {
            "id": 9,
            "ok": False,
            "error": {
                "type": "VertexNotFoundError",
                "message": "vertex 'missing' is not in the graph",
            },
        }
        assert service.errors == 1

    def test_poisoned_batch_only_fails_offender(self, index):
        service = make_service(index)
        good = index.vertex_labels[:4]
        requests = [{"id": v, "op": "max_score", "vertices": [v]} for v in good]
        requests.insert(2, {"id": "bad", "op": "max_score", "vertices": ["missing"]})
        responses = submit_all(service, requests)
        by_id = {r["id"]: r for r in responses}
        assert not by_id["bad"]["ok"]
        assert all(by_id[v]["ok"] for v in good)
        assert service.batcher.stats()["fallback_batches"] >= 1

    def test_call_returns_raw_results(self, index):
        service = make_service(index)
        vertices = index.vertex_labels[:5]

        async def drive():
            return await service.call("max_score", vertices=vertices)

        engine = NucleusQueryEngine(index)
        assert asyncio.run(drive()) == [engine.max_score(v) for v in vertices]

    def test_info_reports_revision_and_mmap(self, index):
        [response] = submit_all(make_service(index), [{"op": "info"}])
        info = response["result"]
        assert info["revision"] == 0
        assert info["mmapped"] is False
        assert info["num_vertices"] == index.num_vertices

    def test_service_from_path_mmaps(self, index_path, index):
        service = QueryService(index_path)
        assert service.index.mmapped
        assert service.index.cache_key == index.cache_key

    def test_stats_counters(self, index):
        service = make_service(index)
        submit_all(service, [{"op": "ping"}, {"op": "nope"}])
        stats = service.stats()
        assert stats["requests"] == 2
        assert stats["errors"] == 1
        assert stats["reloads"] == 0
        assert stats["revision"] == 0
        assert stats["batching"]["max_batch"] == 32


# --------------------------------------------------------------------------- #
# hot reload
# --------------------------------------------------------------------------- #
def updated_index(graph, index) -> NucleusIndex:
    """Revision 1: delete one intra-community edge (changes some answers)."""
    u, v, _ = sorted(graph.edges(), key=lambda t: (str(t[0]), str(t[1])))[0]
    return apply_updates(index, [EdgeUpdate("delete", u, v)])


class TestHotReload:
    def test_refresh_accepts_incremental_descendant(self, graph, index):
        service = make_service(index)
        revised = updated_index(graph, index)
        assert service.refresh(revised) is True
        assert service.index.revision == 1
        assert service.reloads == 1

    def test_refresh_same_revision_is_noop(self, index):
        service = make_service(index)
        assert service.refresh(index) is False
        assert service.reloads == 0

    def test_refresh_accepts_same_graph_rebuild(self, graph, index):
        service = make_service(index)
        rebuilt = build_local_index(graph, THETA)
        assert rebuilt.fingerprint == index.fingerprint
        # A from-scratch rebuild of the same graph shares the cache_key, so
        # this is a no-op swap rather than a rejection.
        assert service.refresh(rebuilt) is False

    def test_refresh_rejects_foreign_lineage(self, index):
        service = make_service(index)
        foreign = build_local_index(clique_graph(6, probability=0.8), THETA)
        with pytest.raises(IndexCompatibilityError, match="refusing hot reload"):
            service.refresh(foreign)
        assert service.index.cache_key == index.cache_key  # still serving

    def test_reload_from_requires_path(self, index):
        service = make_service(index)
        with pytest.raises(IndexFormatError, match="needs a path"):
            service.reload_from()

    def test_watcher_picks_up_new_revision(self, graph, index, tmp_path):
        path = tmp_path / "watched.idx.npz"
        index.save(path, compress=False)
        service = QueryService(path, batching=BatchingConfig(max_batch=1))
        revised = updated_index(graph, index)

        async def drive():
            watcher = asyncio.ensure_future(service.watch(interval=0.02))
            try:
                await asyncio.sleep(0.1)  # give the watcher its baseline
                revised.save(path, compress=False)
                deadline = time.monotonic() + 10
                while service.index.revision != 1:
                    assert time.monotonic() < deadline, "watcher never reloaded"
                    await asyncio.sleep(0.02)
            finally:
                watcher.cancel()

        asyncio.run(drive())
        assert service.reloads == 1

    def test_watcher_survives_bad_file_and_retries(self, graph, index, tmp_path):
        path = tmp_path / "watched.idx.npz"
        index.save(path, compress=False)
        service = QueryService(path, batching=BatchingConfig(max_batch=1))
        revised = updated_index(graph, index)

        async def drive():
            watcher = asyncio.ensure_future(service.watch(interval=0.02))
            try:
                await asyncio.sleep(0.1)
                path.write_bytes(b"this is not an index")  # torn write
                deadline = time.monotonic() + 10
                while service.reload_failures == 0:
                    assert time.monotonic() < deadline, "bad file never noticed"
                    await asyncio.sleep(0.02)
                assert service.index.revision == 0  # old revision kept serving
                assert "IndexFormatError" in service.last_reload_error
                revised.save(path, compress=False)  # publisher fixes the file
                deadline = time.monotonic() + 10
                while service.index.revision != 1:
                    assert time.monotonic() < deadline, "watcher never recovered"
                    await asyncio.sleep(0.02)
            finally:
                watcher.cancel()

        asyncio.run(drive())


class TestNoTornReads:
    def test_concurrent_queries_never_mix_revisions(self, graph, index):
        """Every response under concurrent reload matches exactly one revision.

        Two engines (old and new revision) provide the ground truth; a fleet
        of clients hammers the service while another task hot-reloads
        mid-stream.  Each response names the revision that answered it and
        its result must equal that revision's answer — a torn read (old
        cache_key with new arrays, or a half-swapped engine) would disagree.
        """
        revised = updated_index(graph, index)
        vertices = index.vertex_labels
        expected = {
            idx.cache_key: dict(
                zip(vertices, NucleusQueryEngine(idx).max_score(vertices).tolist())
            )
            for idx in (index, revised)
        }
        # The update must change at least one answer, or the test is vacuous.
        assert expected[index.cache_key] != expected[revised.cache_key]

        service = make_service(index)
        responses: list[tuple[object, dict]] = []

        async def client(offset: int):
            for i in range(40):
                vertex = vertices[(offset + i) % len(vertices)]
                response = await service.submit(
                    {"op": "max_score", "vertices": [vertex]}
                )
                responses.append((vertex, response))
                if i % 8 == 7:
                    await asyncio.sleep(0)

        async def reloader():
            await asyncio.sleep(0.002)
            service.refresh(revised)

        async def drive():
            await asyncio.gather(*[client(o * 3) for o in range(20)], reloader())

        asyncio.run(drive())

        seen_keys = set()
        for vertex, response in responses:
            assert response["ok"], response
            key = response["cache_key"]
            assert key in expected, "response tagged with an unknown revision"
            assert response["result"] == [expected[key][vertex]], (
                f"torn read: vertex {vertex} answered {response['result']} "
                f"which is not revision {response['revision']}'s answer"
            )
            seen_keys.add(key)
        assert seen_keys == set(expected), "reload did not interleave the stream"


# --------------------------------------------------------------------------- #
# asyncio server
# --------------------------------------------------------------------------- #
async def tcp_session(service: QueryService, lines: list[bytes]) -> list[dict]:
    server = await create_server(service)
    host, port = server.sockets[0].getsockname()[:2]
    reader, writer = await asyncio.open_connection(host, port)
    writer.write(b"".join(lines))
    await writer.drain()
    responses = []
    for _ in range(sum(1 for line in lines if line.strip())):
        responses.append(json.loads(await asyncio.wait_for(reader.readline(), 10)))
    writer.close()
    await writer.wait_closed()
    server.close()
    await server.wait_closed()
    return responses


class TestServer:
    def test_round_trip_and_malformed_lines(self, index):
        service = make_service(index)
        vertices = index.vertex_labels[:3]
        lines = [
            json.dumps({"id": 1, "op": "max_score", "vertices": vertices}).encode()
            + b"\n",
            b"garbage\n",
            b"\n",  # blank lines are skipped, not answered
            json.dumps({"id": 2, "op": "ping"}).encode() + b"\n",
        ]
        responses = asyncio.run(tcp_session(service, lines))
        by_id = {r["id"]: r for r in responses}
        engine = NucleusQueryEngine(index)
        assert by_id[1]["result"] == [engine.max_score(v) for v in vertices]
        assert by_id[2]["result"] == "pong"
        assert not by_id[None]["ok"]
        assert by_id[None]["error"]["type"] == "MalformedRequestError"

    def test_pipelined_requests_all_answered(self, index):
        service = make_service(index)
        lines = [
            json.dumps(
                {"id": i, "op": "max_score", "vertices": [index.vertex_labels[i]]}
            ).encode()
            + b"\n"
            for i in range(20)
        ]
        responses = asyncio.run(tcp_session(service, lines))
        assert sorted(r["id"] for r in responses) == list(range(20))
        assert all(r["ok"] for r in responses)

    def test_fastapi_adapter_is_import_guarded(self, index):
        from repro.serve import create_fastapi_app, fastapi_available

        service = make_service(index)
        if fastapi_available():  # pragma: no cover - not installed in CI
            assert create_fastapi_app(service) is not None
        else:
            with pytest.raises(Exception, match="fastapi"):
                create_fastapi_app(service)


# --------------------------------------------------------------------------- #
# CLI
# --------------------------------------------------------------------------- #
class TestServeCli:
    def test_missing_index_is_typed_one_line_error(self, tmp_path, capsys):
        assert serve_main([str(tmp_path / "nope.idx.npz")]) == 2
        err = capsys.readouterr().err
        assert err.startswith("repro-serve: error: ")
        assert err.count("\n") == 1

    def test_corrupt_index_is_typed_error(self, tmp_path, capsys):
        bad = tmp_path / "bad.idx.npz"
        bad.write_bytes(b"junk")
        assert serve_main([str(bad)]) == 2
        err = capsys.readouterr().err
        assert "repro-serve: error: IndexFormatError:" in err

    def test_bad_batching_flags_are_typed_errors(self, index_path, capsys):
        assert serve_main([str(index_path), "--max-batch", "0"]) == 2
        assert "InvalidParameterError" in capsys.readouterr().err

    def test_subprocess_serves_queries(self, index_path, index):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        process = subprocess.Popen(
            [sys.executable, "-m", "repro.serve.cli", str(index_path), "--port", "0"],
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
            env=env,
        )
        try:
            ready = process.stdout.readline()
            assert "serving" in ready, ready
            port = int(ready.split(" on ")[1].split()[0].rsplit(":", 1)[1])
            with socket.create_connection(("127.0.0.1", port), timeout=10) as sock:
                request = {"id": 0, "op": "max_score", "vertices": index.vertex_labels[:2]}
                sock.sendall(json.dumps(request).encode() + b"\n")
                with sock.makefile("rb") as stream:
                    response = json.loads(stream.readline())
            engine = NucleusQueryEngine(index)
            assert response["ok"]
            assert response["result"] == [
                engine.max_score(v) for v in index.vertex_labels[:2]
            ]
        finally:
            process.terminate()
            process.wait(timeout=30)

    def test_subprocess_error_exit_code(self, tmp_path):
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        result = subprocess.run(
            [sys.executable, "-m", "repro.serve.cli", str(tmp_path / "missing.npz")],
            capture_output=True,
            text=True,
            env=env,
            timeout=300,
        )
        assert result.returncode == 2
        assert result.stderr.startswith("repro-serve: error: ")


# --------------------------------------------------------------------------- #
# mmap loads
# --------------------------------------------------------------------------- #
class TestMmapLoad:
    def test_uncompressed_archive_is_memory_mapped(self, index, tmp_path):
        path = tmp_path / "plain.idx.npz"
        index.save(path, compress=False)
        mapped = NucleusIndex.load(path, mmap=True)
        assert mapped.mmapped

        def backing(array):
            while array.base is not None and not isinstance(array, np.memmap):
                array = array.base
            return array

        # The arrays are views over file-backed memmaps, not copies.
        assert any(
            isinstance(backing(array), np.memmap)
            for array in mapped.arrays.values()
        )

    def test_compressed_archive_falls_back_to_eager(self, index, tmp_path):
        path = tmp_path / "compressed.idx.npz"
        index.save(path)  # compress=True default
        mapped = NucleusIndex.load(path, mmap=True)
        assert not mapped.mmapped  # silent, correct fallback

    def test_mmap_parity_with_eager_load(self, index, tmp_path):
        path = tmp_path / "parity.idx.npz"
        index.save(path, compress=False)
        mapped = NucleusIndex.load(path, mmap=True)
        eager = NucleusIndex.load(path)
        assert mapped.header == eager.header
        for name in eager.arrays:
            assert np.array_equal(mapped.arrays[name], eager.arrays[name]), name

    def test_mmap_engine_answers_match_eager(self, index, tmp_path):
        path = tmp_path / "answers.idx.npz"
        index.save(path, compress=False)
        mapped_engine = NucleusQueryEngine(NucleusIndex.load(path, mmap=True))
        eager_engine = NucleusQueryEngine(NucleusIndex.load(path))
        vertices = index.vertex_labels
        assert np.array_equal(
            mapped_engine.max_score(vertices), eager_engine.max_score(vertices)
        )
        k = max(index.levels)
        assert np.array_equal(
            mapped_engine.smallest_nucleus(vertices, k),
            eager_engine.smallest_nucleus(vertices, k),
        )
