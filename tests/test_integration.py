"""End-to-end integration tests: full pipelines across modules, and the example scripts."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

from repro import (
    HybridEstimator,
    ProbabilisticGraph,
    global_nucleus_decomposition,
    graph_statistics,
    local_nucleus_decomposition,
    probabilistic_clustering_coefficient,
    probabilistic_core_decomposition,
    probabilistic_density,
    probabilistic_truss_decomposition,
    read_edge_list,
    weak_nucleus_decomposition,
    write_edge_list,
)
from repro.baselines import k_eta_core_subgraph, k_gamma_truss_subgraph
from repro.experiments.datasets import load_dataset

EXAMPLES_DIR = Path(__file__).resolve().parent.parent / "examples"


class TestFullPipeline:
    """Generate → persist → reload → decompose → compare → report, in one flow."""

    def test_end_to_end_on_krogan_analogue(self, tmp_path):
        graph = load_dataset("krogan", "tiny")

        # persist and reload through the edge-list format (isolated vertices are
        # not representable in an edge list, so compare the edge sets)
        path = tmp_path / "krogan.edges"
        write_edge_list(graph, path)
        reloaded = read_edge_list(path)
        assert sorted(reloaded.edges()) == sorted(graph.edges())

        # dataset statistics
        stats = graph_statistics(reloaded, "krogan-tiny")
        assert stats.num_edges == graph.num_edges
        assert stats.num_triangles > 0

        # local decomposition, exact and approximate
        theta = 0.1
        exact = local_nucleus_decomposition(reloaded, theta)
        approximate = local_nucleus_decomposition(
            reloaded, theta, estimator=HybridEstimator()
        )
        assert exact.max_score >= 1
        differing = sum(
            1 for t in exact.scores if exact.scores[t] != approximate.scores[t]
        )
        assert differing / len(exact.scores) < 0.3

        # the top nucleus beats the top core subgraph on density and clustering
        top_nuclei = exact.nuclei(exact.max_score)
        assert top_nuclei
        core = probabilistic_core_decomposition(reloaded, eta=theta)
        core_subgraph = k_eta_core_subgraph(reloaded, max(core.values()), theta, core)
        truss = probabilistic_truss_decomposition(reloaded, gamma=theta)
        truss_subgraph = k_gamma_truss_subgraph(reloaded, max(truss.values()), theta, truss)
        nucleus_density = max(probabilistic_density(n.subgraph) for n in top_nuclei)
        assert nucleus_density >= probabilistic_density(core_subgraph) - 1e-9
        assert nucleus_density >= probabilistic_density(truss_subgraph) - 0.1

        # global and weakly-global refinements run on top of the local result
        global_nuclei = global_nucleus_decomposition(
            reloaded, k=1, theta=0.01, n_samples=40, local_result=None, seed=0
        )
        weak_nuclei = weak_nucleus_decomposition(
            reloaded, k=1, theta=0.01, n_samples=40, seed=0
        )
        for nucleus in global_nuclei + weak_nuclei:
            assert nucleus.num_edges >= 6
            assert 0.0 <= probabilistic_clustering_coefficient(nucleus.subgraph) <= 1.0

    def test_three_models_agree_on_a_certain_clique(self):
        """On a deterministic 6-clique all three decompositions find the same subgraph."""
        graph = ProbabilisticGraph()
        import itertools

        for u, v in itertools.combinations(range(6), 2):
            graph.add_edge(u, v, 1.0)
        theta, k = 0.9, 3
        local = local_nucleus_decomposition(graph, theta)
        assert local.max_score == 3
        weak = weak_nucleus_decomposition(graph, k, theta, n_samples=25, seed=1)
        global_ = global_nucleus_decomposition(graph, k, theta, n_samples=25, seed=1)
        for nuclei in (local.nuclei(k), weak, global_):
            assert len(nuclei) == 1
            assert set(nuclei[0].subgraph.vertices()) == set(range(6))


@pytest.mark.parametrize(
    "script",
    [
        "quickstart.py",
        "protein_interaction_analysis.py",
        "collaboration_communities.py",
        "compare_decompositions.py",
    ],
)
def test_example_scripts_run_cleanly(script):
    """Every example script runs end-to-end and prints something sensible."""
    result = subprocess.run(
        [sys.executable, str(EXAMPLES_DIR / script)],
        capture_output=True,
        text=True,
        timeout=600,
        check=False,
    )
    assert result.returncode == 0, result.stderr
    assert len(result.stdout.splitlines()) > 5
