"""Parity tests for the serve-time query engine (repro.query).

Every query must return exactly what recomputing the decomposition and
inspecting its result objects returns — for both graph backends and all
three decomposition modes — plus LRU cache behaviour, batched-vs-scalar
agreement, and the typed error paths.
"""

from __future__ import annotations

import functools
import math

import numpy as np
import pytest

from repro.core.global_nucleus import global_nucleus_decomposition
from repro.core.local import local_nucleus_decomposition
from repro.core.weak_nucleus import weak_nucleus_decomposition
from repro.exceptions import (
    InvalidParameterError,
    LevelNotIndexedError,
    NucleusNotFoundError,
    TriangleNotFoundError,
    VertexNotFoundError,
)
from repro.experiments.datasets import load_dataset
from repro.graph.generators import planted_nucleus_graph
from repro.index import NucleusIndex, build_local_index
from repro.metrics.density import probabilistic_density
from repro.query import LRUCache, NucleusQueryEngine

THETA = 0.3
PARITY_DATASETS = ("krogan", "flickr")
BACKENDS = ("dict", "csr")


@functools.lru_cache(maxsize=None)
def parity_setup(name: str, backend: str):
    graph = load_dataset(name, scale="tiny")
    result = local_nucleus_decomposition(graph, THETA, backend=backend)
    engine = NucleusQueryEngine(build_local_index(graph, THETA, local_result=result))
    return graph, result, engine


@functools.lru_cache(maxsize=None)
def planted_graph():
    return planted_nucleus_graph(
        num_communities=2,
        community_size=6,
        intra_density=1.0,
        background_vertices=8,
        background_density=0.1,
        bridges_per_community=2,
        probability_model=lambda rng: 0.9,
        seed=3,
    )


def nucleus_key(nucleus):
    return (nucleus.num_vertices, nucleus.num_edges, sorted(nucleus.triangles))


# --------------------------------------------------------------------------- #
# engine vs recompute, local mode
# --------------------------------------------------------------------------- #
@pytest.mark.parametrize("name", PARITY_DATASETS)
@pytest.mark.parametrize("backend", BACKENDS)
class TestLocalParity:
    def test_vertex_max_score(self, name, backend):
        graph, result, engine = parity_setup(name, backend)
        vertices = sorted(graph.vertices())
        batch = engine.max_score(vertices)
        for vertex, from_batch in zip(vertices, batch.tolist()):
            assert engine.max_score(vertex) == result.max_score_of(vertex) == from_batch

    def test_nuclei_every_level(self, name, backend):
        graph, result, engine = parity_setup(name, backend)
        for k in range(0, result.max_score + 2):
            recomputed = {n.triangles: n for n in result.nuclei(k)}
            served = {n.triangles: n for n in engine.nuclei(k)}
            assert served.keys() == recomputed.keys()
            for triangles, nucleus in served.items():
                assert nucleus == recomputed[triangles]

    def test_nucleus_of_single_seed(self, name, backend):
        graph, result, engine = parity_setup(name, backend)
        k = max(0, result.max_score)
        members = sorted({v for n in result.nuclei(k) for v in n.subgraph.vertices()})
        assert members, "parity dataset must have a nucleus at max level"
        for seed in members[:10]:
            expected = min(
                (n for n in result.nuclei(k) if seed in n.subgraph),
                key=nucleus_key,
            )
            assert engine.nucleus_of(seed, k) == expected

    def test_nucleus_of_multi_seed(self, name, backend):
        graph, result, engine = parity_setup(name, backend)
        k = max(0, result.max_score)
        nucleus = result.nuclei(k)[0]
        seeds = sorted(nucleus.subgraph.vertices())[:3]
        candidates = [
            n for n in result.nuclei(k)
            if all(s in n.subgraph for s in seeds)
        ]
        expected = min(candidates, key=nucleus_key)
        assert engine.nucleus_of(seeds, k) == expected

    def test_contains(self, name, backend):
        graph, result, engine = parity_setup(name, backend)
        for k in range(0, result.max_score + 1):
            member_sets = [set(n.subgraph.vertices()) for n in result.nuclei(k)]
            vertices = sorted(graph.vertices())
            batch = engine.contains(vertices, k)
            for vertex, from_batch in zip(vertices, batch.tolist()):
                expected = any(vertex in s for s in member_sets)
                assert engine.contains(vertex, k) is expected
                assert from_batch is expected

    def test_smallest_nucleus(self, name, backend):
        graph, result, engine = parity_setup(name, backend)
        k = max(0, result.max_score)
        vertices = sorted(graph.vertices())
        components = engine.smallest_nucleus(vertices, k)
        for vertex, component in zip(vertices, components.tolist()):
            assert engine.smallest_nucleus(vertex, k) == component  # scalar ≡ batch
            if component < 0:
                with pytest.raises(NucleusNotFoundError):
                    engine.nucleus_of(vertex, k)
            else:
                assert engine.index.component_nucleus(component) == engine.nucleus_of(vertex, k)

    def test_rank_values(self, name, backend):
        graph, result, engine = parity_setup(name, backend)
        for k in range(0, result.max_score + 1):
            nuclei = engine.nuclei(k)
            components, densities = engine.rank_table(k=k, by="density")
            assert np.all(np.diff(densities) <= 0)
            by_component = dict(zip(components.tolist(), densities.tolist()))
            _, scores = engine.rank_table(k=k, by="score")
            for component, nucleus in zip(
                engine.index.components_at_level(k).tolist(), nuclei
            ):
                assert math.isclose(
                    by_component[component],
                    probabilistic_density(nucleus.subgraph),
                    rel_tol=1e-12,
                )
                reliability = math.prod(p for _, _, p in nucleus.subgraph.edges())
                _, reliabilities = engine.rank_table(k=k, by="reliability")
                assert any(
                    math.isclose(r, reliability, rel_tol=1e-9)
                    for r in reliabilities.tolist()
                )
            top = engine.top_nuclei(n=3, k=k, by="score")
            assert [n.triangles for n in top] == [
                engine.index.component_nucleus(int(c)).triangles
                for c in engine.rank_table(k=k, by="score")[0][:3]
            ]
            assert scores.size == len(nuclei)


# --------------------------------------------------------------------------- #
# engine vs recompute, global / weakly-global modes
# --------------------------------------------------------------------------- #
class TestMonteCarloParity:
    @pytest.mark.parametrize(
        "decompose, mode",
        [
            (global_nucleus_decomposition, "global"),
            (weak_nucleus_decomposition, "weakly-global"),
        ],
    )
    def test_nuclei_match_decomposition(self, decompose, mode):
        graph = planted_graph()
        nuclei = decompose(graph, k=1, theta=THETA, seed=7, n_samples=40)
        index = NucleusIndex.from_nuclei(graph, nuclei, k=1, theta=THETA, mode=mode)
        engine = NucleusQueryEngine(index, graph=graph)
        recomputed = {n.triangles: n for n in nuclei}
        served = {n.triangles: n for n in engine.nuclei(1)}
        assert served.keys() == recomputed.keys()
        for triangles, nucleus in served.items():
            assert nucleus == recomputed[triangles]
        # Vertex scores: k for members, -1 for everyone else.
        member_vertices = {v for n in nuclei for v in n.subgraph.vertices()}
        for vertex in graph.vertices():
            expected = 1 if vertex in member_vertices else -1
            assert engine.max_score(vertex) == expected

    def test_empty_decomposition_serves_empty_answers(self):
        graph = planted_graph()
        engine = NucleusQueryEngine(
            NucleusIndex.from_nuclei(graph, [], k=9, theta=THETA, mode="global")
        )
        assert engine.nuclei(9) == []
        assert engine.contains(0, 9) is False
        assert engine.max_score(0) == -1
        with pytest.raises(NucleusNotFoundError):
            engine.nucleus_of(0, 9)

    def test_unindexed_level_raises(self):
        graph = planted_graph()
        nuclei = weak_nucleus_decomposition(graph, k=1, theta=THETA, seed=7, n_samples=40)
        engine = NucleusQueryEngine(
            NucleusIndex.from_nuclei(graph, nuclei, k=1, theta=THETA, mode="weakly-global")
        )
        with pytest.raises(LevelNotIndexedError):
            engine.nuclei(2)
        with pytest.raises(LevelNotIndexedError):
            engine.nucleus_of(0, 0)


# --------------------------------------------------------------------------- #
# error paths
# --------------------------------------------------------------------------- #
class TestErrors:
    def engine(self) -> NucleusQueryEngine:
        return NucleusQueryEngine(build_local_index(planted_graph(), THETA))

    def test_unknown_vertex(self):
        engine = self.engine()
        with pytest.raises(VertexNotFoundError):
            engine.max_score("missing")
        with pytest.raises(VertexNotFoundError):
            engine.max_score([0, "missing"])
        with pytest.raises(VertexNotFoundError):
            engine.nucleus_of(["missing"], 0)
        with pytest.raises(VertexNotFoundError):
            engine.contains("missing", 0)

    def test_invalid_k(self):
        engine = self.engine()
        with pytest.raises(InvalidParameterError):
            engine.nuclei(-1)
        with pytest.raises(InvalidParameterError):
            engine.nucleus_of(0, -2)

    def test_no_containing_nucleus(self):
        engine = self.engine()
        # Level beyond max_score: indexed (local mode) but empty.
        beyond = max(engine.index.levels, default=0) + 1
        assert engine.nuclei(beyond) == []
        with pytest.raises(NucleusNotFoundError):
            engine.nucleus_of(0, beyond)

    def test_empty_seed_list(self):
        with pytest.raises(InvalidParameterError):
            self.engine().nucleus_of([], 0)

    def test_bad_rank_key(self):
        with pytest.raises(InvalidParameterError):
            self.engine().top_nuclei(by="popularity")


# --------------------------------------------------------------------------- #
# unified scalar-or-array surface + deprecated *_batch aliases
# --------------------------------------------------------------------------- #
class TestUnifiedSurface:
    def engine(self) -> NucleusQueryEngine:
        return NucleusQueryEngine(build_local_index(planted_graph(), THETA))

    def test_scalar_and_array_shapes_match(self):
        engine = self.engine()
        k = max(engine.index.levels)
        vertices = sorted(planted_graph().vertices())[:5]
        scores = engine.max_score(vertices)
        membership = engine.contains(vertices, k)
        components = engine.smallest_nucleus(vertices, k)
        assert isinstance(scores, np.ndarray) and scores.shape == (5,)
        assert membership.dtype == bool and components.dtype == np.int64
        for vertex, score, member, component in zip(
            vertices, scores.tolist(), membership.tolist(), components.tolist()
        ):
            assert engine.max_score(vertex) == score
            assert isinstance(engine.max_score(vertex), int)
            assert engine.contains(vertex, k) is member
            assert engine.smallest_nucleus(vertex, k) == component

    @pytest.mark.parametrize(
        "alias, unified, extra",
        [
            ("max_score_batch", "max_score", ()),
            ("contains_batch", "contains", (0,)),
            ("smallest_nucleus_batch", "smallest_nucleus", (0,)),
        ],
    )
    def test_deprecated_batch_aliases(self, alias, unified, extra):
        engine = self.engine()
        vertices = sorted(planted_graph().vertices())[:4]
        with pytest.deprecated_call(match=f"{alias}.. is deprecated"):
            from_alias = getattr(engine, alias)(vertices, *extra)
        from_unified = getattr(engine, unified)(vertices, *extra)
        assert isinstance(from_alias, np.ndarray)
        assert np.array_equal(from_alias, from_unified)


# --------------------------------------------------------------------------- #
# LRU cache
# --------------------------------------------------------------------------- #
class TestCache:
    def test_hot_queries_hit(self):
        engine = NucleusQueryEngine(build_local_index(planted_graph(), THETA))
        k = max(engine.index.levels)
        first = engine.nucleus_of(0, k)
        assert engine.cache_info()["hits"] == 0
        assert engine.nucleus_of(0, k) is first
        assert engine.cache_info()["hits"] == 1
        assert engine.top_nuclei(2) is not engine.top_nuclei(2)  # copies …
        assert engine.top_nuclei(2) == engine.top_nuclei(2)  # … of one cached list
        assert engine.cache_info()["hits"] >= 4

    def test_keys_carry_fingerprint(self):
        engine = NucleusQueryEngine(build_local_index(planted_graph(), THETA))
        engine.max_score(0)
        assert all(key[0] == engine.index.fingerprint for key in engine.cache._entries)

    def test_eviction_and_clear(self):
        cache = LRUCache(maxsize=2)
        cache.put("a", 1)
        cache.put("b", 2)
        assert cache.get("a") == 1
        cache.put("c", 3)  # evicts "b" (least recently used)
        assert cache.get("b") is None
        assert cache.get("a") == 1
        assert len(cache) == 2 and cache.stats()["evictions"] == 1
        cache.clear()
        assert len(cache) == 0 and cache.stats() == {
            "size": 0, "maxsize": 2, "hits": 0, "misses": 0, "evictions": 0,
            "hit_rate": 0.0,
        }

    def test_invalid_capacity(self):
        with pytest.raises(InvalidParameterError):
            LRUCache(maxsize=0)


# --------------------------------------------------------------------------- #
# result-container API (satellite: dunders + typed errors)
# --------------------------------------------------------------------------- #
class TestResultContainers:
    def result(self):
        return local_nucleus_decomposition(planted_graph(), THETA)

    def test_nucleus_dunders(self):
        nucleus = self.result().max_nucleus()[0]
        assert len(nucleus) == nucleus.num_vertices
        assert set(iter(nucleus)) == set(nucleus.vertices())
        some_vertex = next(iter(nucleus))
        assert some_vertex in nucleus
        assert "missing" not in nucleus
        assert [] not in nucleus  # unhashable probes are simply absent

    def test_score_of(self):
        result = self.result()
        triangle, score = next(iter(result.scores.items()))
        u, v, w = triangle
        assert result.score_of(w, u, v) == score  # any vertex order
        with pytest.raises(TriangleNotFoundError):
            result.score_of(-1, -2, -3)

    def test_max_score_of_unknown_vertex(self):
        with pytest.raises(VertexNotFoundError):
            self.result().max_score_of("missing")

    def test_reprs_are_consistent(self):
        result = self.result()
        assert repr(result).startswith("LocalNucleusDecomposition(")
        assert repr(result.max_nucleus()[0]).startswith("ProbabilisticNucleus(")
