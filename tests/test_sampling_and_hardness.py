"""Tests for Monte-Carlo machinery, network reliability, and the hardness reductions."""

from __future__ import annotations


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.deterministic.connectivity import is_connected
from repro.exceptions import InvalidParameterError, VertexNotFoundError
from repro.graph.generators import clique_graph
from repro.graph.probabilistic_graph import ProbabilisticGraph
from repro.hardness.reductions import (
    global_indicator_probability,
    reduce_clique_to_weak_nucleus,
    reduce_reliability_to_global_nucleus,
    weak_indicator_probability,
)
from repro.sampling.monte_carlo import (
    estimate_world_probability,
    hoeffding_error_bound,
    hoeffding_sample_size,
)
from repro.sampling.reliability import (
    binary_search_reliability,
    estimate_reliability,
    exact_reliability,
    reliability_decision,
)


class TestHoeffding:
    def test_paper_setting(self):
        """With epsilon = delta = 0.1 the bound gives 150 samples (paper rounds to 200)."""
        assert hoeffding_sample_size(0.1, 0.1) == 150

    def test_sample_size_monotone_in_epsilon(self):
        assert hoeffding_sample_size(0.05, 0.1) > hoeffding_sample_size(0.1, 0.1)

    def test_error_bound_is_inverse_of_sample_size(self):
        n = hoeffding_sample_size(0.1, 0.1)
        assert hoeffding_error_bound(n, 0.1) <= 0.1 + 1e-9

    @pytest.mark.parametrize("epsilon,delta", [(0.0, 0.1), (0.1, 0.0), (1.5, 0.1), (0.1, 2.0)])
    def test_invalid_parameters(self, epsilon, delta):
        with pytest.raises(InvalidParameterError):
            hoeffding_sample_size(epsilon, delta)

    def test_error_bound_invalid(self):
        with pytest.raises(InvalidParameterError):
            hoeffding_error_bound(0, 0.1)


class TestEstimateWorldProbability:
    def test_certain_predicate(self, four_clique_graph):
        estimate = estimate_world_probability(
            four_clique_graph, lambda world: True, n_samples=10, seed=0
        )
        assert float(estimate) == 1.0
        assert estimate.n_samples == 10

    def test_estimate_close_to_exact(self):
        graph = ProbabilisticGraph([(0, 1, 0.7), (1, 2, 0.7), (0, 2, 0.7)])
        estimate = estimate_world_probability(
            graph, is_connected, n_samples=3000, seed=1
        )
        exact = exact_reliability(graph)
        assert abs(float(estimate) - exact) < 0.05

    def test_reuses_provided_worlds(self, four_clique_graph):
        worlds = [four_clique_graph.copy() for _ in range(4)]
        estimate = estimate_world_probability(four_clique_graph, lambda w: True, worlds=worlds)
        assert estimate.n_samples == 4
        with pytest.raises(InvalidParameterError):
            estimate_world_probability(four_clique_graph, lambda w: True, worlds=[])

    def test_default_sample_size_comes_from_hoeffding(self, four_clique_graph):
        estimate = estimate_world_probability(
            four_clique_graph, lambda world: False, epsilon=0.2, delta=0.2, seed=2
        )
        assert estimate.n_samples == hoeffding_sample_size(0.2, 0.2)


class TestReliability:
    def test_single_certain_edge(self):
        graph = ProbabilisticGraph([(0, 1, 1.0)])
        assert exact_reliability(graph) == pytest.approx(1.0)

    def test_single_uncertain_edge(self):
        graph = ProbabilisticGraph([(0, 1, 0.3)])
        assert exact_reliability(graph) == pytest.approx(0.3)

    def test_triangle_reliability_closed_form(self):
        """A triangle with edge probability p is connected iff at least two edges exist."""
        p = 0.6
        graph = ProbabilisticGraph([(0, 1, p), (1, 2, p), (0, 2, p)])
        expected = p ** 3 + 3 * p * p * (1 - p)
        assert exact_reliability(graph) == pytest.approx(expected)

    def test_disconnected_graph_reliability_zero(self, disconnected_graph):
        assert exact_reliability(disconnected_graph) == 0.0

    def test_empty_graph(self, empty_graph):
        assert exact_reliability(empty_graph) == 0.0

    def test_estimate_close_to_exact(self):
        p = 0.5
        graph = ProbabilisticGraph([(0, 1, p), (1, 2, p), (0, 2, p)])
        estimate = estimate_reliability(graph, n_samples=4000, seed=3)
        assert abs(float(estimate) - exact_reliability(graph)) < 0.05

    def test_decision_version(self):
        graph = ProbabilisticGraph([(0, 1, 0.3)])
        assert reliability_decision(graph, 0.2)
        assert not reliability_decision(graph, 0.5)
        with pytest.raises(InvalidParameterError):
            reliability_decision(graph, 1.5)

    def test_binary_search_recovers_reliability(self):
        graph = ProbabilisticGraph([(0, 1, 0.3), (1, 2, 0.8), (0, 2, 0.5)])
        exact = exact_reliability(graph)
        recovered = binary_search_reliability(lambda theta: exact >= theta, precision=1e-9)
        assert recovered == pytest.approx(exact, abs=1e-6)

    def test_binary_search_invalid_precision(self):
        with pytest.raises(InvalidParameterError):
            binary_search_reliability(lambda theta: True, precision=0.0)


class TestReliabilityReduction:
    """Lemma 2: Pr(X_{F,tri,g} >= 0) equals the reliability of the original graph."""

    def test_gadget_structure(self, triangle_graph):
        reduction = reduce_reliability_to_global_nucleus(triangle_graph, anchor=0)
        assert reduction.anchor == 0
        u, w = reduction.dummies
        assert reduction.graph.edge_probability(u, w) == 1.0
        assert reduction.graph.edge_probability(u, 0) == 1.0
        assert reduction.graph.num_edges == triangle_graph.num_edges + 3

    def test_unknown_anchor_rejected(self, triangle_graph):
        with pytest.raises(VertexNotFoundError):
            reduce_reliability_to_global_nucleus(triangle_graph, anchor=99)

    def test_empty_graph_rejected(self, empty_graph):
        with pytest.raises(InvalidParameterError):
            reduce_reliability_to_global_nucleus(empty_graph)

    @pytest.mark.parametrize(
        "edges",
        [
            [(0, 1, 0.5)],
            [(0, 1, 0.5), (1, 2, 0.7)],
            [(0, 1, 0.5), (1, 2, 0.7), (0, 2, 0.9)],
            [(0, 1, 0.6), (1, 2, 0.6), (2, 3, 0.6), (0, 3, 0.6)],
        ],
    )
    def test_correspondence_with_connectivity_indicator(self, edges):
        """Using connectivity as the k=0 nucleus notion (as in the paper's Lemma 2 proof),
        the indicator probability of the gadget triangle equals the reliability."""
        graph = ProbabilisticGraph(edges)
        reduction = reduce_reliability_to_global_nucleus(graph, anchor=0)
        probability = global_indicator_probability(
            reduction.graph,
            reduction.triangle,
            k=0,
            nucleus_check=lambda world, _k: is_connected(world),
        )
        assert probability == pytest.approx(exact_reliability(graph), abs=1e-9)

    def test_decision_reduction(self):
        graph = ProbabilisticGraph([(0, 1, 0.5), (1, 2, 0.7), (0, 2, 0.9)])
        reduction = reduce_reliability_to_global_nucleus(graph, anchor=0)
        reliability = exact_reliability(graph)
        probability = global_indicator_probability(
            reduction.graph,
            reduction.triangle,
            k=0,
            nucleus_check=lambda world, _k: is_connected(world),
        )
        for theta in (reliability - 0.05, reliability + 0.05):
            assert (probability >= theta) == (reliability >= theta)


class TestCliqueReduction:
    """Theorem 4.2: G has a (k+3)-clique iff the reduced graph has a w-(k, θ)-nucleus."""

    def test_parameters(self):
        graph = clique_graph(4)
        reduction = reduce_clique_to_weak_nucleus(graph, clique_size=4)
        m = graph.num_edges
        assert reduction.k == 1
        assert reduction.edge_probability == pytest.approx(1.0 / 2 ** (2 * m + 1))
        assert reduction.theta == pytest.approx(reduction.edge_probability ** 6)

    def test_too_small_clique_size_rejected(self):
        with pytest.raises(InvalidParameterError):
            reduce_clique_to_weak_nucleus(clique_graph(4), clique_size=3)

    def test_positive_instance(self):
        """A graph containing a 4-clique: some triangle reaches the weak threshold."""
        graph = clique_graph(4)
        graph.add_edge(0, 9, 1.0)
        reduction = reduce_clique_to_weak_nucleus(graph, clique_size=4)
        probability = weak_indicator_probability(reduction.graph, (0, 1, 2), reduction.k)
        assert probability >= reduction.theta

    def test_negative_instance(self):
        """A triangle-free-of-4-cliques graph: no triangle reaches the weak threshold."""
        graph = ProbabilisticGraph(
            [(0, 1, 1.0), (1, 2, 1.0), (0, 2, 1.0), (2, 3, 1.0), (3, 4, 1.0), (2, 4, 1.0)]
        )
        reduction = reduce_clique_to_weak_nucleus(graph, clique_size=4)
        for triangle in [(0, 1, 2), (2, 3, 4)]:
            probability = weak_indicator_probability(reduction.graph, triangle, reduction.k)
            assert probability < reduction.theta


class TestMonteCarloProperties:
    @given(p=st.floats(0.1, 0.9), seed=st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_reliability_estimate_within_hoeffding_band(self, p, seed):
        graph = ProbabilisticGraph([(0, 1, p), (1, 2, p), (0, 2, p)])
        n = 500
        estimate = estimate_reliability(graph, n_samples=n, seed=seed)
        # With delta = 0.001 the band is wide; violations would indicate bias.
        epsilon = hoeffding_error_bound(n, 0.001)
        assert abs(float(estimate) - exact_reliability(graph)) <= epsilon
