"""Backend-parity tests: ``backend="csr"`` must reproduce ``backend="dict"`` exactly.

The CSR engine re-implements triangle/4-clique indexing with ordered-array
merges and initialises κ-scores through the vectorized batched estimators, so
these tests pin the acceptance guarantee: identical nucleus scores, nuclei,
and weakly-global output on every seed fixture, for every support estimator.
"""

from __future__ import annotations

import pytest

from repro.core.approximations import (
    BinomialEstimator,
    DynamicProgrammingEstimator,
    NormalEstimator,
    PoissonEstimator,
    TranslatedPoissonEstimator,
)
from repro.core.hybrid import HybridEstimator
from repro.core.local import local_nucleus_decomposition
from repro.core.weak_nucleus import weak_nucleus_decomposition
from repro.exceptions import InvalidParameterError

ESTIMATORS = [
    DynamicProgrammingEstimator,
    HybridEstimator,
    PoissonEstimator,
    TranslatedPoissonEstimator,
    NormalEstimator,
    BinomialEstimator,
]

FIXTURE_NAMES = [
    "empty_graph",
    "single_edge_graph",
    "triangle_graph",
    "four_clique_graph",
    "five_clique_graph",
    "paper_figure1_graph",
    "paper_example1_nucleus_graph",
    "paper_example2_graph",
    "planted_graph",
    "disconnected_graph",
]


@pytest.fixture(params=FIXTURE_NAMES)
def fixture_graph(request):
    return request.getfixturevalue(request.param)


class TestLocalParity:
    @pytest.mark.parametrize("theta", [0.01, 0.3, 0.7])
    def test_scores_identical_on_seed_fixtures(self, fixture_graph, theta):
        for estimator_cls in ESTIMATORS:
            expected = local_nucleus_decomposition(
                fixture_graph, theta, estimator=estimator_cls(), backend="dict"
            )
            actual = local_nucleus_decomposition(
                fixture_graph, theta, estimator=estimator_cls(), backend="csr"
            )
            assert actual.scores == expected.scores, estimator_cls.__name__
            assert actual.max_score == expected.max_score

    def test_nuclei_identical(self, paper_figure1_graph):
        theta = 0.42
        expected = local_nucleus_decomposition(paper_figure1_graph, theta, backend="dict")
        actual = local_nucleus_decomposition(paper_figure1_graph, theta, backend="csr")
        for k in range(expected.max_score + 1):
            expected_groups = {n.triangles for n in expected.nuclei(k)}
            actual_groups = {n.triangles for n in actual.nuclei(k)}
            assert actual_groups == expected_groups

    def test_default_estimator_parity(self, planted_graph):
        expected = local_nucleus_decomposition(planted_graph, 0.2)
        actual = local_nucleus_decomposition(planted_graph, 0.2, backend="csr")
        assert actual.scores == expected.scores
        assert actual.estimator_name == expected.estimator_name == "dp"

    def test_csr_graph_input_implies_csr_backend(self, paper_figure1_graph):
        csr = paper_figure1_graph.to_csr()
        expected = local_nucleus_decomposition(paper_figure1_graph, 0.42)
        actual = local_nucleus_decomposition(csr, 0.42)
        assert actual.scores == expected.scores
        # The result graph is expanded back to dict form for post-processing.
        assert actual.graph == paper_figure1_graph

    def test_unknown_backend_rejected(self, triangle_graph):
        with pytest.raises(InvalidParameterError):
            local_nucleus_decomposition(triangle_graph, 0.5, backend="sparse")

    def test_custom_estimator_falls_back_to_scalar(self, four_clique_graph):
        class TailOverride(DynamicProgrammingEstimator):
            """A subclass unknown to the kernel registry."""

            name = "custom"

        expected = local_nucleus_decomposition(
            four_clique_graph, 0.3, estimator=TailOverride(), backend="dict"
        )
        actual = local_nucleus_decomposition(
            four_clique_graph, 0.3, estimator=TailOverride(), backend="csr"
        )
        assert actual.scores == expected.scores


class TestWeakParity:
    @pytest.mark.parametrize("k", [1, 2])
    def test_weak_nuclei_identical_with_fixed_seed(self, planted_graph, k):
        expected = weak_nucleus_decomposition(
            planted_graph, k=k, theta=0.1, n_samples=40, seed=7, backend="dict"
        )
        actual = weak_nucleus_decomposition(
            planted_graph, k=k, theta=0.1, n_samples=40, seed=7, backend="csr"
        )
        assert {n.triangles for n in actual} == {n.triangles for n in expected}
        assert [n.mode for n in actual] == [n.mode for n in expected]

    def test_weak_on_paper_fixture(self, paper_figure1_graph):
        expected = weak_nucleus_decomposition(
            paper_figure1_graph, k=1, theta=0.4, n_samples=60, seed=11, backend="dict"
        )
        actual = weak_nucleus_decomposition(
            paper_figure1_graph, k=1, theta=0.4, n_samples=60, seed=11, backend="csr"
        )
        assert {n.triangles for n in actual} == {n.triangles for n in expected}
