"""Backend-parity tests: ``backend="csr"`` must reproduce ``backend="dict"`` exactly.

The CSR engine re-implements triangle/4-clique indexing with ordered-array
merges and initialises κ-scores through the vectorized batched estimators, so
these tests pin the acceptance guarantee: identical nucleus scores, nuclei,
and weakly-global output on every seed fixture, for every support estimator.
"""

from __future__ import annotations

import random

import pytest

from repro.core.approximations import (
    BinomialEstimator,
    DynamicProgrammingEstimator,
    NormalEstimator,
    PoissonEstimator,
    TranslatedPoissonEstimator,
)
from repro.core.global_nucleus import global_nucleus_decomposition
from repro.core.hybrid import HybridEstimator
from repro.core.local import local_nucleus_decomposition
from repro.core.weak_nucleus import (
    triangle_weak_scores,
    triangle_weak_scores_matrix,
    weak_nucleus_decomposition,
)
from repro.deterministic.nucleus import is_k_nucleus
from repro.exceptions import InvalidParameterError
from graph_factories import small_er_graph
from repro.graph.generators import clique_graph
from repro.graph.possible_worlds import sample_world
from repro.graph.probabilistic_graph import ProbabilisticGraph
from repro.sampling.monte_carlo import hoeffding_error_bound
from repro.sampling.world_matrix import CandidateWorldIndex, global_triangle_counts

ESTIMATORS = [
    DynamicProgrammingEstimator,
    HybridEstimator,
    PoissonEstimator,
    TranslatedPoissonEstimator,
    NormalEstimator,
    BinomialEstimator,
]

FIXTURE_NAMES = [
    "empty_graph",
    "single_edge_graph",
    "triangle_graph",
    "four_clique_graph",
    "five_clique_graph",
    "paper_figure1_graph",
    "paper_example1_nucleus_graph",
    "paper_example2_graph",
    "planted_graph",
    "disconnected_graph",
]


@pytest.fixture(params=FIXTURE_NAMES)
def fixture_graph(request):
    return request.getfixturevalue(request.param)


class TestLocalParity:
    @pytest.mark.parametrize("theta", [0.01, 0.3, 0.7])
    def test_scores_identical_on_seed_fixtures(self, fixture_graph, theta):
        for estimator_cls in ESTIMATORS:
            expected = local_nucleus_decomposition(
                fixture_graph, theta, estimator=estimator_cls(), backend="dict"
            )
            actual = local_nucleus_decomposition(
                fixture_graph, theta, estimator=estimator_cls(), backend="csr"
            )
            assert actual.scores == expected.scores, estimator_cls.__name__
            assert actual.max_score == expected.max_score

    def test_nuclei_identical(self, paper_figure1_graph):
        theta = 0.42
        expected = local_nucleus_decomposition(paper_figure1_graph, theta, backend="dict")
        actual = local_nucleus_decomposition(paper_figure1_graph, theta, backend="csr")
        for k in range(expected.max_score + 1):
            expected_groups = {n.triangles for n in expected.nuclei(k)}
            actual_groups = {n.triangles for n in actual.nuclei(k)}
            assert actual_groups == expected_groups

    def test_default_estimator_parity(self, planted_graph):
        expected = local_nucleus_decomposition(planted_graph, 0.2)
        actual = local_nucleus_decomposition(planted_graph, 0.2, backend="csr")
        assert actual.scores == expected.scores
        assert actual.estimator_name == expected.estimator_name == "dp"

    def test_csr_graph_input_implies_csr_backend(self, paper_figure1_graph):
        csr = paper_figure1_graph.to_csr()
        expected = local_nucleus_decomposition(paper_figure1_graph, 0.42)
        actual = local_nucleus_decomposition(csr, 0.42)
        assert actual.scores == expected.scores
        # The result graph is expanded back to dict form for post-processing.
        assert actual.graph == paper_figure1_graph

    def test_unknown_backend_rejected(self, triangle_graph):
        with pytest.raises(InvalidParameterError):
            local_nucleus_decomposition(triangle_graph, 0.5, backend="sparse")

    def test_custom_estimator_falls_back_to_scalar(self, four_clique_graph):
        class TailOverride(DynamicProgrammingEstimator):
            """A subclass unknown to the kernel registry."""

            name = "custom"

        expected = local_nucleus_decomposition(
            four_clique_graph, 0.3, estimator=TailOverride(), backend="dict"
        )
        actual = local_nucleus_decomposition(
            four_clique_graph, 0.3, estimator=TailOverride(), backend="csr"
        )
        assert actual.scores == expected.scores


class TestWeakParity:
    """Weak-decomposition parity across backends.

    Since the world-matrix engine landed, ``backend="csr"`` samples its worlds
    from a numpy stream instead of the dict path's ``random.Random`` stream,
    so the two backends agree *in distribution* rather than draw-for-draw.
    On graphs whose edges are all certain there is only one possible world and
    the outputs must still be identical; the statistical agreement on
    probabilistic graphs is pinned by tests/test_world_matrix.py.
    """

    @pytest.mark.parametrize("k", [1, 2])
    def test_weak_nuclei_identical_on_deterministic_graph(self, k):
        graph = clique_graph(6, probability=1.0)
        expected = weak_nucleus_decomposition(
            graph, k=k, theta=0.9, n_samples=40, seed=7, backend="dict"
        )
        actual = weak_nucleus_decomposition(
            graph, k=k, theta=0.9, n_samples=40, seed=7, backend="csr"
        )
        assert {n.triangles for n in actual} == {n.triangles for n in expected}
        assert [n.mode for n in actual] == [n.mode for n in expected]

    def test_weak_on_certain_core_of_paper_fixture(self, paper_example1_nucleus_graph):
        # Raising every probability to 1 makes sampling irrelevant, so the
        # backends must return exactly the same weakly-global nuclei.
        graph = ProbabilisticGraph(
            (u, v, 1.0) for u, v, _ in paper_example1_nucleus_graph.edges()
        )
        expected = weak_nucleus_decomposition(
            graph, k=1, theta=0.4, n_samples=60, seed=11, backend="dict"
        )
        actual = weak_nucleus_decomposition(
            graph, k=1, theta=0.4, n_samples=60, seed=11, backend="csr"
        )
        assert {n.triangles for n in actual} == {n.triangles for n in expected}
        assert actual and expected


class TestRandomizedParitySweep:
    """Seeded Erdős–Rényi sweep: dict, csr, and the peel engine must agree.

    The local decomposition (whose ``backend="csr"`` path *is* the peel
    engine) is compared exactly; the Monte-Carlo global and weak estimates
    are compared within Hoeffding bounds, since the two backends draw their
    worlds from different (identically distributed) random streams.
    """

    @pytest.mark.parametrize("seed", range(6))
    @pytest.mark.parametrize("theta", [0.05, 0.35])
    def test_local_scores_and_nuclei_exact(self, seed, theta):
        graph = small_er_graph(26, 0.28, seed=seed)
        expected = local_nucleus_decomposition(graph, theta, backend="dict")
        actual = local_nucleus_decomposition(graph, theta, backend="csr")
        assert actual.scores == expected.scores
        for k in range(expected.max_score + 1):
            expected_groups = {n.triangles for n in expected.nuclei(k)}
            actual_groups = {n.triangles for n in actual.nuclei(k)}
            assert actual_groups == expected_groups, (seed, theta, k)

    @pytest.mark.parametrize("estimator_cls", ESTIMATORS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_local_parity_on_dense_graphs_for_every_estimator(
        self, estimator_cls, seed
    ):
        # Dense 4-clique-rich instances where the peel repairs many scores:
        # the approximated tails are not monotone under clique removal (a
        # death can *raise* the Normal estimator's κ), so the engine must
        # follow the reference loop's per-clique repair schedule exactly —
        # this sweep caught a repair-coalescing regression once.
        graph = small_er_graph(14, 0.68, seed=seed, probabilities=(0.3, 1.0))
        for theta in (0.2, 0.5):
            expected = local_nucleus_decomposition(
                graph, theta, estimator=estimator_cls(), backend="dict"
            )
            actual = local_nucleus_decomposition(
                graph, theta, estimator=estimator_cls(), backend="csr"
            )
            assert actual.scores == expected.scores, (estimator_cls.__name__, theta)

    @pytest.mark.parametrize("seed", [3, 11])
    def test_weak_scores_within_hoeffding(self, seed):
        graph = small_er_graph(9, 0.6, seed=seed)
        k, n_samples, delta = 1, 1500, 1e-4
        epsilon = hoeffding_error_bound(n_samples, delta)
        dict_scores = triangle_weak_scores(graph, k, n_samples, random.Random(seed))
        matrix_scores = triangle_weak_scores_matrix(
            graph, k, n_samples, seed=seed + 1
        )
        assert set(dict_scores) == set(matrix_scores)
        for triangle, score in dict_scores.items():
            assert abs(score - matrix_scores[triangle]) <= 2 * epsilon

    @pytest.mark.parametrize("seed", [5, 17])
    def test_global_counts_within_hoeffding(self, seed):
        graph = small_er_graph(8, 0.7, seed=seed)
        k, n_samples, delta = 1, 1500, 1e-4
        epsilon = hoeffding_error_bound(n_samples, delta)

        index = CandidateWorldIndex.from_graph(graph)
        labels = index.triangle_labels()
        worlds = index.sample(n_samples, seed=seed + 1)
        matrix_estimates = dict(
            zip(labels, (global_triangle_counts(index, worlds, k) / n_samples).tolist())
        )

        rng = random.Random(seed)
        dict_counts = dict.fromkeys(labels, 0)
        for _ in range(n_samples):
            world = sample_world(graph, rng=rng)
            if not is_k_nucleus(world, k):
                continue
            for triangle in labels:
                u, v, w = triangle
                if (
                    world.has_edge(u, v)
                    and world.has_edge(u, w)
                    and world.has_edge(v, w)
                ):
                    dict_counts[triangle] += 1

        for triangle in labels:
            dict_estimate = dict_counts[triangle] / n_samples
            assert abs(matrix_estimates[triangle] - dict_estimate) <= 2 * epsilon

    @pytest.mark.parametrize("seed", [2, 7])
    def test_global_and_weak_decompositions_on_certain_er_graph(self, seed):
        # Forcing every probability to 1 collapses the sampling noise, so
        # the full Algorithm 2/3 pipelines must agree across backends even
        # though they route through different peel and sampling engines.
        topology = small_er_graph(12, 0.55, seed=seed)
        graph = ProbabilisticGraph((u, v, 1.0) for u, v, _ in topology.edges())
        for decomposition in (global_nucleus_decomposition, weak_nucleus_decomposition):
            expected = decomposition(
                graph, k=1, theta=0.9, n_samples=30, seed=seed, backend="dict"
            )
            actual = decomposition(
                graph, k=1, theta=0.9, n_samples=30, seed=seed, backend="csr"
            )
            assert {n.triangles for n in actual} == {n.triangles for n in expected}


class TestGlobalParity:
    @pytest.mark.parametrize("k", [1, 2])
    def test_global_nuclei_identical_on_deterministic_graph(self, k):
        graph = clique_graph(6, probability=1.0)
        expected = global_nucleus_decomposition(
            graph, k=k, theta=0.9, n_samples=30, seed=5, backend="dict"
        )
        actual = global_nucleus_decomposition(
            graph, k=k, theta=0.9, n_samples=30, seed=5, backend="csr"
        )
        assert {n.triangles for n in actual} == {n.triangles for n in expected}
        assert [n.mode for n in actual] == [n.mode for n in expected]

    def test_global_backend_validation(self, triangle_graph):
        with pytest.raises(InvalidParameterError):
            global_nucleus_decomposition(triangle_graph, k=1, theta=0.5, backend="sparse")
        with pytest.raises(InvalidParameterError):
            global_nucleus_decomposition(triangle_graph, k=1, theta=0.5, n_jobs=0)
        with pytest.raises(InvalidParameterError):
            global_nucleus_decomposition(
                triangle_graph, k=1, theta=0.5, backend="dict", n_jobs=2
            )
