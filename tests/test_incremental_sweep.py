"""Tier-2 randomized differential sweep for incremental index maintenance.

The acceptance gate of the incremental-update subsystem: across several
graphs (seeded Erdős–Rényi and a bundled dataset analogue) and every index
mode, replay long chains of randomized update batches and assert after
**every** batch that ``apply_updates`` produced arrays bit-identical to
rebuilding the index from scratch over the updated graph — and that a
refreshed :class:`~repro.query.NucleusQueryEngine` answers queries exactly
like an engine built fresh on the rebuilt index.

The sweep totals well over 100 batches (3 local graphs × 2 stream seeds
× 17 chained batches, plus 8 each for the global and weakly-global
fallbacks).  Every assertion
message carries ``(graph, seed, step)`` so a failure pins the exact batch;
re-running just that parametrization replays the identical stream (the
update generator is seeded by those values alone).

Run with ``pytest -m tier2``; tier 1 deselects this module via the default
marker expression in ``pyproject.toml``.
"""

from __future__ import annotations

import random

import numpy as np
import pytest
from graph_factories import bundled_graph, small_er_graph

from repro.graph.probabilistic_graph import ProbabilisticGraph
from repro.index import (
    EdgeUpdate,
    apply_updates,
    build_global_index,
    build_local_index,
    build_weak_index,
)
from repro.query import NucleusQueryEngine

pytestmark = pytest.mark.tier2

THETA = 0.05
STEPS_PER_RUN = 17  # x 3 graphs x 2 stream seeds = 102 local batches
FALLBACK_BATCHES = 8

LOCAL_GRAPHS = {
    "er18": lambda: small_er_graph(18, 0.35, seed=0, probabilities=(0.3, 1.0)),
    "er14": lambda: small_er_graph(14, 0.5, seed=1),
    "krogan": lambda: bundled_graph("krogan", scale="tiny"),
}


def random_batch(edges: dict, labels: list, rng: random.Random) -> list:
    """A random batch of 1–4 distinct-edge updates, valid for ``edges``.

    Mutates ``edges`` (the canonical pair → probability bookkeeping) in
    lockstep so chained calls always draw valid updates.
    """
    batch = []
    touched = set()
    for _ in range(rng.randint(1, 4)):
        op = rng.choices(("change", "insert", "delete"), weights=(2, 1, 1))[0]
        if op == "insert":
            for _ in range(200):
                u, v = rng.sample(labels, 2)
                key = tuple(sorted((u, v), key=repr))
                if key not in edges and key not in touched:
                    break
            else:  # graph is (nearly) complete; re-price instead
                op = "change"
        if op != "insert":
            candidates = [key for key in edges if key not in touched]
            if not candidates:
                continue
            key = candidates[rng.randrange(len(candidates))]
        touched.add(key)
        if op == "insert":
            p = round(rng.uniform(0.1, 1.0), 6)
            edges[key] = p
            batch.append(EdgeUpdate("insert", key[0], key[1], p))
        elif op == "delete":
            del edges[key]
            batch.append(EdgeUpdate("delete", key[0], key[1]))
        else:
            p = round(rng.uniform(0.05, 1.0), 6)
            edges[key] = p
            batch.append(EdgeUpdate("change", key[0], key[1], p))
    return batch


def reference_graph(edges: dict, labels: list) -> ProbabilisticGraph:
    graph = ProbabilisticGraph([(u, v, p) for (u, v), p in edges.items()])
    for label in labels:  # the vertex set is fixed under edge updates
        graph.add_vertex(label)
    return graph


def assert_bit_identical(actual, expected, context) -> None:
    assert actual.fingerprint == expected.fingerprint, context
    for name, want in expected.arrays.items():
        got = actual.arrays[name]
        assert got.dtype == want.dtype and got.shape == want.shape, (context, name)
        assert got.tobytes() == want.tobytes(), (context, name)


def assert_queries_match(engine, rebuilt, labels, context) -> None:
    fresh = NucleusQueryEngine(rebuilt)
    assert np.array_equal(
        engine.max_score(labels), fresh.max_score(labels)
    ), context
    for k in rebuilt.levels:
        assert np.array_equal(
            engine.contains(labels, k), fresh.contains(labels, k)
        ), (context, k)


@pytest.mark.parametrize("name", sorted(LOCAL_GRAPHS))
@pytest.mark.parametrize("seed", [0, 1])
def test_local_mode_randomized_sweep(name, seed):
    graph = LOCAL_GRAPHS[name]()
    labels = sorted(graph.vertices(), key=repr)
    edges = {tuple(sorted((u, v), key=repr)): p for u, v, p in graph.edges()}
    rng = random.Random(f"{name}/{seed}")

    index = build_local_index(graph, THETA, backend="csr")
    engine = NucleusQueryEngine(index, graph)
    revision = 0
    for step in range(1, STEPS_PER_RUN + 1):
        batch = random_batch(edges, labels, rng)
        if not batch:
            continue
        context = (name, seed, step, batch)
        index = apply_updates(index, batch)
        revision += 1
        rebuilt = build_local_index(reference_graph(edges, labels), THETA, backend="csr")
        assert_bit_identical(index, rebuilt, context)
        assert index.revision == revision, context
        engine.refresh(index)
        assert_queries_match(engine, rebuilt, labels, context)


@pytest.mark.parametrize("builder", [build_global_index, build_weak_index])
def test_fallback_modes_randomized_sweep(builder):
    """Global / weakly-global indexes rebuild deterministically per batch."""
    graph = small_er_graph(9, 0.6, seed=4)
    labels = sorted(graph.vertices(), key=repr)
    edges = {tuple(sorted((u, v), key=repr)): p for u, v, p in graph.edges()}
    rng = random.Random(builder.__name__)

    index = builder(graph, k=1, theta=0.4, n_samples=30, seed=7)
    revision = 0
    for step in range(1, FALLBACK_BATCHES + 1):
        batch = random_batch(edges, labels, rng)
        if not batch:
            continue
        context = (builder.__name__, step, batch)
        index = apply_updates(index, batch)
        revision += 1
        rebuilt = builder(
            reference_graph(edges, labels), k=1, theta=0.4, n_samples=30, seed=7
        )
        assert_bit_identical(index, rebuilt, context)
        assert index.revision == revision, context
