"""Tests for the declarative experiment pipeline.

Four concerns are pinned here:

* **Golden parity** — every experiment, run through the pipeline on the
  ``dict`` backend at tiny scale, reproduces the pre-pipeline harness's
  formatted report byte for byte (wall-clock columns normalised).  The
  golden files under ``tests/data/golden_experiments/`` were captured from
  the seed-era ``run_*``/``format_*`` code before the refactor.
* **Backend parity** — ``backend="csr"`` (the new default) produces rows
  identical to ``backend="dict"`` for the deterministic experiments.
* **Cache correctness** — warm-vs-cold runs agree on the default backend,
  hits/misses are counted, corrupt snapshots fall back to recomputation,
  and :func:`~repro.index.builders.local_result_from_index` round-trips.
* **Execution semantics** — parallel grid cells return the same rows as
  serial execution, grid filters select cells, artifacts carry the full
  schema.
"""

from __future__ import annotations

import dataclasses
import json
import re
from pathlib import Path

import pytest

from repro.exceptions import InvalidParameterError
from repro.experiments import (
    ablation_hybrid,
    ablation_sampling,
    figure4,
    figure5,
    figure6,
    figure7,
    figure8,
    table1,
    table2,
    table3,
)
from repro.experiments.formatting import Column, render_markdown, render_plain
from repro.experiments.pipeline import (
    ARTIFACT_FORMAT,
    DecompositionCache,
    RunConfig,
    run_pipeline,
    run_spec,
    write_artifact,
)
from repro.experiments.registry import EXPERIMENT_NAMES, all_specs, get_spec
from repro.graph.generators import complete_probabilistic_graph, uniform_probability
from repro.index.builders import build_global_index, local_result_from_index
from repro.index.nucleus_index import NucleusIndex

GOLDEN_DIR = Path(__file__).parent / "data" / "golden_experiments"

TINY_DICT = RunConfig(backend="dict", scale="tiny")
TINY_CSR = RunConfig(backend="csr", scale="tiny")


def _golden(name: str) -> str:
    return (GOLDEN_DIR / f"{name}.txt").read_text().rstrip("\n")


def _normalize_seconds_columns(text: str, *, per_line: int | None = None) -> str:
    """Replace wall-clock float fields so only deterministic content remains.

    ``per_line`` limits how many float fields are normalised per row (used
    when only the leading float columns are timings); ``None`` normalises
    every ``d.dddd``-style field.
    """
    out = []
    for line in text.split("\n"):
        count = 0 if per_line is None else per_line
        out.append(re.sub(r"\d+\.\d+|\binf\b", "#", line, count=count))
    return "\n".join(out)


class TestGoldenParity:
    """Pipeline output == pre-refactor harness output, byte for byte."""

    def test_table1(self):
        report = table1.format_table1(table1.run_table1(scale="tiny", backend="dict"))
        assert report == _golden("table1")

    def test_table2(self):
        report = table2.format_table2(table2.run_table2(scale="tiny", backend="dict"))
        assert report == _golden("table2")

    def test_table3(self):
        report = table3.format_table3(table3.run_table3(scale="tiny", backend="dict"))
        assert report == _golden("table3")

    def test_figure4(self):
        report = figure4.format_figure4(
            figure4.run_figure4(names=("krogan", "dblp"), scale="tiny", backend="dict")
        )
        # DP (s) / AP (s) / speedup are wall-clock; theta, kmax, and the
        # layout itself are pinned exactly.
        want = _golden("figure4")
        normalize = lambda text: "\n".join(  # noqa: E731
            re.sub(r"\d+\.\d{4}\s+\d+\.\d{4}\s+(\d+\.\d{2}|inf)", "#", line)
            for line in text.split("\n")
        )
        assert normalize(report) == normalize(want)
        assert report.split("\n")[0] == want.split("\n")[0]

    def test_figure5(self):
        report = figure5.format_figure5(
            figure5.run_figure5(
                names=("krogan", "dblp"), n_samples=30, scale="tiny", seed=0,
                backend="dict",
            )
        )
        want = _golden("figure5")
        normalize = lambda text: re.sub(r"\d+\.\d{3}", "#", text)  # noqa: E731
        # Nucleus counts and k (the seeded Monte-Carlo outcome) are exact.
        assert normalize(report) == normalize(want)

    def test_figure6(self):
        report = figure6.format_figure6(figure6.run_figure6())
        assert report == _golden("figure6")

    def test_figure7(self):
        report = figure7.format_figure7(figure7.run_figure7(scale="tiny", backend="dict"))
        assert report == _golden("figure7")

    def test_figure8(self):
        report = figure8.format_figure8(
            figure8.run_figure8(
                names=("krogan",), theta=0.01, n_samples=20, scale="tiny", seed=0,
                backend="dict",
            )
        )
        assert report == _golden("figure8")

    def test_ablation_hybrid(self):
        report = ablation_hybrid.format_ablation_hybrid(
            ablation_hybrid.run_ablation_hybrid(scale="tiny", backend="dict")
        )
        want = _golden("ablation_hybrid")
        assert _normalize_seconds_columns(report, per_line=1) == _normalize_seconds_columns(
            want, per_line=1
        )

    def test_ablation_sampling(self):
        graph = complete_probabilistic_graph(5, uniform_probability(0.4, 0.95), seed=7)
        report = ablation_sampling.format_ablation_sampling(
            ablation_sampling.run_ablation_sampling(
                sample_sizes=(25, 50, 100), graph=graph, seed=0
            )
        )
        assert report == _golden("ablation_sampling")


class TestBackendParity:
    """csr (the new default) and dict produce identical rows."""

    def test_table2_rows_identical_across_backends(self):
        dict_rows = table2.run_table2(scale="tiny", backend="dict")
        csr_rows = table2.run_table2(scale="tiny", backend="csr")
        assert dict_rows == csr_rows

    def test_figure7_rows_identical_across_backends(self):
        dict_rows = figure7.run_figure7(scale="tiny", backend="dict")
        csr_rows = figure7.run_figure7(scale="tiny", backend="csr")
        assert dict_rows == csr_rows

    def test_run_wrappers_default_to_csr(self):
        import inspect

        for wrapper in (
            table1.run_table1, table2.run_table2, table3.run_table3,
            figure4.run_figure4, figure5.run_figure5, figure7.run_figure7,
            figure8.run_figure8, ablation_hybrid.run_ablation_hybrid,
        ):
            assert inspect.signature(wrapper).parameters["backend"].default == "csr"


class TestRegistry:
    def test_all_experiments_registered(self):
        assert EXPERIMENT_NAMES == (
            "table1", "table2", "table3", "figure4", "figure5",
            "figure6", "figure7", "figure8", "ablation_hybrid", "ablation_sampling",
            "adaptive_frontier", "incremental_updates",
        )

    def test_get_spec_unknown_name(self):
        with pytest.raises(KeyError, match="valid names"):
            get_spec("figure99")

    def test_specs_declare_row_schemas(self):
        for spec in all_specs():
            assert dataclasses.is_dataclass(spec.row_type)
            assert spec.columns, spec.name


class TestRunConfig:
    def test_rejects_unknown_backend(self):
        with pytest.raises(InvalidParameterError):
            RunConfig(backend="gpu")

    def test_rejects_non_positive_jobs(self):
        with pytest.raises(InvalidParameterError):
            RunConfig(n_jobs=0)

    def test_grid_filter_matching(self):
        config = RunConfig(grid_filter=(("dataset", "krogan"), ("theta", "0.2")))
        assert config.matches({"dataset": "krogan", "theta": 0.2})
        assert not config.matches({"dataset": "dblp", "theta": 0.2})
        assert not config.matches({"theta": 0.2})


class TestDecompositionCache:
    def test_memory_hits_within_one_handle(self):
        graph = complete_probabilistic_graph(6, uniform_probability(0.5, 0.9), seed=1)
        cache = DecompositionCache()
        first = cache.local(graph, 0.3)
        second = cache.local(graph, 0.3)
        assert second is first
        assert (cache.hits, cache.misses) == (1, 1)

    def test_disk_round_trip_is_exact_on_csr(self, tmp_path):
        graph = complete_probabilistic_graph(6, uniform_probability(0.5, 0.9), seed=1)
        cold = DecompositionCache(tmp_path)
        a = cold.local(graph, 0.3, backend="csr")
        warm = DecompositionCache(tmp_path)
        b = warm.local(graph, 0.3, backend="csr")
        assert (warm.hits, warm.misses) == (1, 0)
        assert b.scores == a.scores
        assert list(b.scores) == list(a.scores)  # same insertion order
        assert b.max_score == a.max_score
        assert [n.triangles for n in b.nuclei(1)] == [n.triangles for n in a.nuclei(1)]

    def test_distinct_thetas_and_estimators_do_not_collide(self, tmp_path):
        from repro.core.hybrid import HybridEstimator, HybridParameters

        graph = complete_probabilistic_graph(6, uniform_probability(0.5, 0.9), seed=1)
        cache = DecompositionCache(tmp_path)
        cache.local(graph, 0.3)
        cache.local(graph, 0.6)
        cache.local(graph, 0.3, estimator=HybridEstimator())
        # Differently-tuned hybrids must not share a snapshot...
        cache.local(
            graph, 0.3,
            estimator=HybridEstimator(HybridParameters(clt_min_cliques=1)),
        )
        assert cache.misses == 4 and cache.hits == 0
        # ...but identically-tuned instances must.
        cache.local(graph, 0.3, estimator=HybridEstimator())
        assert cache.hits == 1

    def test_corrupt_snapshot_falls_back_to_recompute(self, tmp_path):
        graph = complete_probabilistic_graph(6, uniform_probability(0.5, 0.9), seed=1)
        cold = DecompositionCache(tmp_path)
        cold.local(graph, 0.3)
        snapshots = list(Path(tmp_path).glob("*.npz"))
        assert len(snapshots) == 1
        snapshots[0].write_bytes(b"not an index")
        warm = DecompositionCache(tmp_path)
        result = warm.local(graph, 0.3)
        assert (warm.hits, warm.misses) == (0, 1)
        assert result.max_score >= -1

    def test_local_result_from_index_rejects_global_mode(self):
        graph = complete_probabilistic_graph(5, uniform_probability(0.7, 0.95), seed=2)
        index = build_global_index(graph, k=1, theta=0.2, n_samples=10, seed=0)
        with pytest.raises(InvalidParameterError):
            local_result_from_index(index)

    def test_local_result_from_index_standalone_graph(self):
        from repro.core.local import local_nucleus_decomposition

        graph = complete_probabilistic_graph(6, uniform_probability(0.5, 0.9), seed=1)
        fresh = local_nucleus_decomposition(graph, 0.3, backend="csr")
        index = NucleusIndex.from_local_result(fresh)
        rebuilt = local_result_from_index(index)  # no live graph: reconstructed
        assert rebuilt.scores == fresh.scores
        assert rebuilt.theta == fresh.theta
        assert rebuilt.estimator_name == fresh.estimator_name


class TestPipelineExecution:
    def test_parallel_rows_match_serial(self):
        spec = get_spec("table2")
        overrides = {"names": ("krogan", "dblp"), "thetas": (0.2, 0.4)}
        serial = run_spec(spec, TINY_CSR, overrides)
        parallel = run_spec(
            spec, dataclasses.replace(TINY_CSR, n_jobs=2), overrides
        )
        assert parallel.rows == serial.rows
        assert [c.params for c in parallel.cells] == [c.params for c in serial.cells]

    def test_grid_filter_limits_cells(self):
        spec = get_spec("table1")
        config = dataclasses.replace(
            TINY_CSR, grid_filter=(("dataset", "krogan"),)
        )
        run = run_spec(spec, config)
        assert [row.name for row in run.rows] == ["krogan"]

    def test_shared_cache_across_specs_hits(self, tmp_path):
        config = dataclasses.replace(TINY_CSR, cache_dir=str(tmp_path))
        overrides = {
            "figure5": {"names": ("krogan",), "n_samples": 20, "seed": 0},
            "figure8": {"names": ("krogan",), "theta": 0.001, "n_samples": 10, "seed": 0},
        }
        runs = run_pipeline(["figure5", "figure8"], config, overrides)
        assert runs["figure5"].cache_misses == 1
        # Figure 8 reloads the θ = 0.001 snapshot Figure 5 just built.
        assert runs["figure8"].cache_hits >= 1
        assert runs["figure8"].cache_misses == 0
        # Entry provenance is per-run even though the cache handle is
        # shared: each run reports exactly the keys it touched.
        assert len(runs["figure8"].cache_entries) == 1
        assert runs["figure8"].cache_entries == runs["figure5"].cache_entries

    def test_use_cache_false_disables_all_reuse(self):
        config = dataclasses.replace(TINY_CSR, use_cache=False)
        overrides = {
            "figure5": {"names": ("krogan",), "n_samples": 20, "seed": 0},
            "figure8": {"names": ("krogan",), "theta": 0.001, "n_samples": 10, "seed": 0},
        }
        runs = run_pipeline(["figure5", "figure8"], config, overrides)
        # Figure 8 must recompute the decomposition Figure 5 already built —
        # the seed-era execution model, relied on by the pipeline benchmark's
        # legacy arm.
        assert runs["figure5"].cache_hits == 0
        assert runs["figure8"].cache_hits == 0
        assert runs["figure8"].cache_misses == 1

    def test_disabled_cache_handle_never_memoizes(self):
        graph = complete_probabilistic_graph(6, uniform_probability(0.5, 0.9), seed=1)
        cache = DecompositionCache(enabled=False)
        first = cache.local(graph, 0.3)
        second = cache.local(graph, 0.3)
        assert second is not first
        assert second.scores == first.scores
        assert (cache.hits, cache.misses) == (0, 2)

    def test_parallel_run_reports_cache_entries(self):
        spec = get_spec("table2")
        overrides = {"names": ("krogan",), "thetas": (0.2, 0.4)}
        run = run_spec(spec, dataclasses.replace(TINY_CSR, n_jobs=2), overrides)
        # Two cells x (dp + hybrid) lookups, keys surfaced from the workers.
        assert len(run.cache_entries) == 4

    def test_unregistered_spec_with_jobs_falls_back_to_serial(self):
        registered = get_spec("table1")
        shadow = dataclasses.replace(registered, title="not the registry's table1")
        run = run_spec(
            shadow,
            dataclasses.replace(TINY_CSR, n_jobs=2),
            {"names": ("krogan", "dblp")},
        )
        # Pool workers would resolve "table1" to the registered spec, so the
        # shadow spec must execute serially in-process — and still work.
        assert run.spec.title == "not the registry's table1"
        assert [row.name for row in run.rows] == ["krogan", "dblp"]

    def test_warm_cache_reproduces_cold_rows_on_csr(self, tmp_path):
        config = dataclasses.replace(TINY_CSR, cache_dir=str(tmp_path))
        overrides = {"figure8": {"names": ("krogan",), "theta": 0.01, "n_samples": 15, "seed": 0}}
        cold = run_pipeline(["figure8"], config, overrides)["figure8"]
        warm = run_pipeline(["figure8"], config, overrides)["figure8"]
        assert cold.cache_misses >= 1 and warm.cache_hits >= 1
        assert warm.rows == cold.rows

    def test_per_cell_seeds_are_deterministic(self):
        spec = get_spec("figure6")
        grid_a = spec.grid(RunConfig(seed=3), {})
        grid_b = spec.grid(RunConfig(seed=3), {})
        assert grid_a == grid_b
        assert [cell["seed"] for cell in grid_a] == [3, 4, 5]


class TestArtifacts:
    REQUIRED_KEYS = {
        "format", "experiment", "title", "paper_reference", "config",
        "row_fields", "num_rows", "rows", "cells", "timings", "cache",
        "fingerprints", "report",
    }

    def test_artifact_schema(self, tmp_path):
        run = run_spec(get_spec("table1"), TINY_CSR, {"names": ("krogan", "dblp")})
        path = write_artifact(run, tmp_path)
        assert path.name == "EXPERIMENTS_table1.json"
        payload = json.loads(path.read_text())
        assert self.REQUIRED_KEYS <= set(payload)
        assert payload["format"] == ARTIFACT_FORMAT
        assert payload["num_rows"] == len(payload["rows"]) == 2
        assert payload["row_fields"] == [
            "name", "num_vertices", "num_edges", "max_degree",
            "average_probability", "num_triangles",
        ]
        assert payload["config"]["backend"] == "csr"
        assert payload["config"]["scale"] == "tiny"
        assert {"hits", "misses", "entries"} <= set(payload["cache"])
        assert set(payload["fingerprints"]["datasets"]) == {"krogan", "dblp"}
        assert all(len(fp) == 64 for fp in payload["fingerprints"]["datasets"].values())
        assert payload["report"] == run.report
        cell = payload["cells"][0]
        assert {"index", "params", "seconds", "cache_hits", "cache_misses"} <= set(cell)

    def test_rows_survive_json_round_trip(self, tmp_path):
        run = run_spec(
            get_spec("table3"), TINY_CSR, {"names": ("flickr",), "thetas": (0.1,)}
        )
        payload = json.loads(write_artifact(run, tmp_path).read_text())
        row = payload["rows"][0]
        # Nested cohesiveness reports serialise as objects, not reprs.
        assert isinstance(row["nucleus"], dict)
        assert "probabilistic_density" in row["nucleus"]


class TestFormattingModule:
    COLUMNS = (
        Column("name", 6),
        Column("value", 8, ".3f"),
    )

    @dataclasses.dataclass(frozen=True)
    class Row:
        name: str
        value: float

    def test_render_plain_matches_legacy_template(self):
        rows = [self.Row("a", 1.5), self.Row("bb", 0.25)]
        expected = "\n".join(
            [
                f"{'name':>6}  {'value':>8}",
                f"{'a':>6}  {1.5:>8.3f}",
                f"{'bb':>6}  {0.25:>8.3f}",
            ]
        )
        assert render_plain(self.COLUMNS, rows) == expected

    def test_render_markdown(self):
        rows = [self.Row("a", 1.5)]
        text = render_markdown(self.COLUMNS, rows)
        assert text.split("\n") == [
            "| name | value |",
            "| ---: | ---: |",
            "| a | 1.500 |",
        ]

    def test_callable_keys_and_zero_width(self):
        columns = (Column("label", 0, key=lambda r: r.name.upper()),)
        assert render_plain(columns, [self.Row("ab", 0.0)]) == "label\nAB"
