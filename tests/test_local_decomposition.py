"""Tests for the local probabilistic nucleus decomposition (Algorithm 1).

Includes brute-force verification of the κ-score definition against explicit
possible-world enumeration, the paper's worked examples, peeling invariants,
and property-based checks on random graphs.
"""

from __future__ import annotations


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.approximations import DynamicProgrammingEstimator
from repro.core.hybrid import HybridEstimator
from repro.core.local import (
    clique_extension_probability,
    local_nucleus_decomposition,
    triangle_existence_probability,
)
from repro.core.result import LocalNucleusDecomposition, ProbabilisticNucleus
from repro.core.support_dp import NO_VALID_K
from repro.deterministic.cliques import enumerate_triangles, four_cliques_containing_triangle
from repro.deterministic.nucleus import nucleus_decomposition
from repro.exceptions import InvalidParameterError
from graph_factories import small_er_graph
from repro.graph.generators import clique_graph
from repro.graph.possible_worlds import enumerate_worlds
from repro.graph.probabilistic_graph import ProbabilisticGraph


def brute_force_initial_kappa(graph: ProbabilisticGraph, triangle, theta: float) -> int:
    """Exact maximum k with Pr(X_{G,tri,local} >= k) >= theta via world enumeration."""
    u, v, w = triangle
    best = NO_VALID_K
    support_values = []
    for world, probability in enumerate_worlds(graph):
        if not (world.has_edge(u, v) and world.has_edge(u, w) and world.has_edge(v, w)):
            support_values.append((None, probability))
            continue
        support = len(world.common_neighbors(u, v, w))
        support_values.append((support, probability))
    max_support = max((s for s, _ in support_values if s is not None), default=0)
    for k in range(0, max_support + 1):
        tail = sum(p for s, p in support_values if s is not None and s >= k)
        if tail >= theta:
            best = k
    return best


class TestProbabilityHelpers:
    def test_triangle_existence_probability(self, triangle_graph):
        assert triangle_existence_probability(triangle_graph, (0, 1, 2)) == pytest.approx(
            0.9 * 0.8 * 0.7
        )

    def test_clique_extension_probability(self, four_clique_graph):
        probability = clique_extension_probability(four_clique_graph, (0, 1, 2), (0, 1, 2, 3))
        assert probability == pytest.approx(0.9 ** 3)

    def test_clique_extension_requires_containment(self, four_clique_graph):
        with pytest.raises(InvalidParameterError):
            clique_extension_probability(four_clique_graph, (0, 1, 2), (0, 1, 98, 99))


class TestPaperExamples:
    def test_example1_local_nucleus(self, paper_example1_nucleus_graph):
        """Example 1: the 4-clique {1,2,3,5} is an ℓ-(1, 0.42)-nucleus."""
        result = local_nucleus_decomposition(paper_example1_nucleus_graph, theta=0.42)
        assert result.max_score == 1
        assert set(result.scores.values()) == {1}
        nuclei = result.nuclei(1)
        assert len(nuclei) == 1
        assert set(nuclei[0].subgraph.vertices()) == {1, 2, 3, 5}

    def test_example1_higher_threshold_drops_nucleus(self, paper_example1_nucleus_graph):
        """At theta > 0.5 the 4-clique through the 0.5-edge no longer qualifies for k=1."""
        result = local_nucleus_decomposition(paper_example1_nucleus_graph, theta=0.6)
        assert result.max_score <= 0

    def test_example2_local_scores(self, paper_example2_graph):
        """Example 2 (Figure 3c): every triangle has at least two 4-cliques with
        probability above 0.01, so the graph is an ℓ-(2, 0.01)-nucleus."""
        result = local_nucleus_decomposition(paper_example2_graph, theta=0.01)
        assert result.max_score == 2
        nuclei = result.nuclei(2)
        assert len(nuclei) == 1
        assert set(nuclei[0].subgraph.vertices()) == {1, 2, 3, 4, 5}

    def test_figure1_graph_theta_042(self, paper_figure1_graph):
        """On the full Figure 1 graph the triangles of the {1,2,3,5} 4-clique
        keep nucleus score 1 at theta = 0.42."""
        result = local_nucleus_decomposition(paper_figure1_graph, theta=0.42)
        assert result.scores[(1, 2, 3)] >= 1
        assert result.scores[(1, 2, 5)] >= 1
        vertices = set()
        for nucleus in result.nuclei(1):
            vertices |= set(nucleus.subgraph.vertices())
        assert {1, 2, 3, 5} <= vertices


class TestInitialScores:
    """The initial κ of every triangle matches exhaustive possible-world enumeration."""

    @pytest.mark.parametrize("theta", [0.05, 0.3, 0.6, 0.9])
    def test_four_clique(self, four_clique_graph, theta):
        for triangle in enumerate_triangles(four_clique_graph):
            expected = brute_force_initial_kappa(four_clique_graph, triangle, theta)
            probability = triangle_existence_probability(four_clique_graph, triangle)
            cliques = four_cliques_containing_triangle(four_clique_graph, triangle)
            profile = [
                clique_extension_probability(four_clique_graph, triangle, c) for c in cliques
            ]
            actual = DynamicProgrammingEstimator().max_k(probability, profile, theta)
            assert actual == expected

    @pytest.mark.parametrize("theta", [0.05, 0.2, 0.5])
    def test_random_small_graph(self, theta):
        graph = small_er_graph(7, 0.7, seed=3)
        if graph.num_edges > 20:
            graph = graph.subgraph(list(graph.vertices())[:6])
        for triangle in enumerate_triangles(graph):
            expected = brute_force_initial_kappa(graph, triangle, theta)
            probability = triangle_existence_probability(graph, triangle)
            cliques = four_cliques_containing_triangle(graph, triangle)
            profile = [clique_extension_probability(graph, triangle, c) for c in cliques]
            actual = DynamicProgrammingEstimator().max_k(probability, profile, theta)
            assert actual == expected


class TestDecompositionBehaviour:
    def test_invalid_theta_rejected(self, four_clique_graph):
        with pytest.raises(InvalidParameterError):
            local_nucleus_decomposition(four_clique_graph, theta=1.2)

    def test_empty_graph(self, empty_graph):
        result = local_nucleus_decomposition(empty_graph, theta=0.5)
        assert result.scores == {}
        assert result.max_score == -1
        assert result.all_nuclei() == {}
        assert result.max_nucleus() == []

    def test_triangle_free_graph(self):
        graph = ProbabilisticGraph([(0, 1, 0.9), (1, 2, 0.9)])
        result = local_nucleus_decomposition(graph, theta=0.5)
        assert result.scores == {}

    def test_every_triangle_receives_a_score(self, planted_graph):
        result = local_nucleus_decomposition(planted_graph, theta=0.2)
        triangles = set(enumerate_triangles(planted_graph))
        assert set(result.scores) == triangles

    def test_scores_never_exceed_deterministic_nucleusness(self, planted_graph):
        """Probabilistic nucleus scores are bounded by the deterministic ones
        (setting all probabilities to 1 can only help)."""
        result = local_nucleus_decomposition(planted_graph, theta=0.2)
        deterministic = nucleus_decomposition(planted_graph)
        for triangle, score in result.scores.items():
            assert score <= deterministic[triangle]

    def test_theta_zero_matches_deterministic(self, planted_graph):
        """At theta = 0 every possible world qualifies, so the decomposition
        coincides with the deterministic nucleus decomposition."""
        result = local_nucleus_decomposition(planted_graph, theta=0.0)
        deterministic = nucleus_decomposition(planted_graph)
        assert result.scores == deterministic

    def test_scores_monotone_in_theta(self, planted_graph):
        low = local_nucleus_decomposition(planted_graph, theta=0.1)
        high = local_nucleus_decomposition(planted_graph, theta=0.6)
        for triangle in low.scores:
            assert high.scores[triangle] <= low.scores[triangle]

    def test_low_probability_triangles_get_sentinel(self):
        graph = clique_graph(4, probability=0.3)
        result = local_nucleus_decomposition(graph, theta=0.9)
        assert set(result.scores.values()) == {NO_VALID_K}
        assert result.nuclei(0) == []

    def test_deterministic_clique_matches_closed_form(self):
        for n in range(4, 8):
            graph = clique_graph(n, probability=1.0)
            result = local_nucleus_decomposition(graph, theta=0.99)
            assert set(result.scores.values()) == {n - 3}

    def test_estimator_name_recorded(self, four_clique_graph):
        dp = local_nucleus_decomposition(four_clique_graph, 0.3)
        ap = local_nucleus_decomposition(four_clique_graph, 0.3, estimator=HybridEstimator())
        assert dp.estimator_name == "dp"
        assert ap.estimator_name == "hybrid"
        assert ap.estimator_selections  # the hybrid recorded its choices

    def test_repr(self, four_clique_graph):
        result = local_nucleus_decomposition(four_clique_graph, 0.3)
        assert "LocalNucleusDecomposition" in repr(result)
        nuclei = result.nuclei(result.max_score)
        assert "ProbabilisticNucleus" in repr(nuclei[0])


class TestNucleiExtraction:
    def test_nuclei_are_nested_across_k(self, planted_graph):
        """Every (k+1)-nucleus is contained in some k-nucleus (hierarchy property)."""
        result = local_nucleus_decomposition(planted_graph, theta=0.1)
        for k in range(0, max(result.max_score, 0)):
            lower = result.nuclei(k)
            higher = result.nuclei(k + 1)
            for high in higher:
                assert any(high.triangles <= low.triangles for low in lower)

    def test_all_nuclei_keys(self, planted_graph):
        result = local_nucleus_decomposition(planted_graph, theta=0.1)
        nuclei_by_k = result.all_nuclei()
        assert set(nuclei_by_k) == set(range(0, result.max_score + 1))

    def test_score_histogram_totals(self, planted_graph):
        result = local_nucleus_decomposition(planted_graph, theta=0.2)
        histogram = result.score_histogram()
        assert sum(histogram.values()) == result.num_triangles

    def test_triangles_with_score_at_least(self, planted_graph):
        result = local_nucleus_decomposition(planted_graph, theta=0.2)
        top = result.triangles_with_score_at_least(result.max_score)
        assert top and all(result.scores[t] == result.max_score for t in top)

    def test_negative_k_rejected(self, planted_graph):
        result = local_nucleus_decomposition(planted_graph, theta=0.2)
        with pytest.raises(InvalidParameterError):
            result.nuclei(-1)

    def test_nucleus_objects_carry_metadata(self, planted_graph):
        result = local_nucleus_decomposition(planted_graph, theta=0.2)
        for nucleus in result.nuclei(1):
            assert isinstance(nucleus, ProbabilisticNucleus)
            assert nucleus.mode == "local"
            assert nucleus.k == 1
            assert nucleus.theta == 0.2
            assert nucleus.num_vertices == nucleus.subgraph.num_vertices
            assert nucleus.num_edges == nucleus.subgraph.num_edges

    def test_nucleus_triangles_meet_threshold_condition(self, planted_graph):
        """Definition 5: every triangle of an ℓ-(k, θ)-nucleus satisfies
        Pr(X >= k) >= θ *within the nucleus subgraph*."""
        theta = 0.2
        result = local_nucleus_decomposition(planted_graph, theta=theta)
        k = result.max_score
        for nucleus in result.nuclei(k):
            sub = nucleus.subgraph
            for triangle in nucleus.triangles:
                probability = triangle_existence_probability(sub, triangle)
                cliques = four_cliques_containing_triangle(sub, triangle)
                profile = [
                    clique_extension_probability(sub, triangle, c) for c in cliques
                ]
                kappa = DynamicProgrammingEstimator().max_k(probability, profile, theta)
                assert kappa >= k


class TestPropertyBased:
    @given(seed=st.integers(0, 50), theta=st.floats(0.05, 0.8))
    @settings(max_examples=20, deadline=None)
    def test_scores_bounded_by_support(self, seed, theta):
        graph = small_er_graph(12, 0.5, seed=seed)
        result = local_nucleus_decomposition(graph, theta)
        from repro.deterministic.cliques import triangle_supports

        supports = triangle_supports(graph)
        for triangle, score in result.scores.items():
            assert NO_VALID_K <= score <= supports[triangle]

    @given(seed=st.integers(0, 50))
    @settings(max_examples=15, deadline=None)
    def test_dp_and_hybrid_close_on_random_graphs(self, seed):
        graph = small_er_graph(12, 0.5, seed=seed)
        dp = local_nucleus_decomposition(graph, 0.3)
        ap = local_nucleus_decomposition(graph, 0.3, estimator=HybridEstimator())
        for triangle in dp.scores:
            assert abs(dp.scores[triangle] - ap.scores[triangle]) <= 1
