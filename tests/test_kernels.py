"""The compiled kernel layer: resolution, fallback, dispatch, and parity.

The ``kernel="numba"`` switch must be a pure performance knob: with the
exact-DP estimator every decomposition is **bit-identical** across kernels
(the unit-drop peel keeps the Poisson-binomial repair in Python behind a
batched callback boundary, and the world-count kernels consume the very
worlds matrix the numpy path samples).  These tests run the kernel bodies
through :func:`repro.kernels.force_interpreted`, so the parity sweep is real
coverage of the kernel logic whether or not numba is installed; with numba
present the same dispatch compiles instead.

Alongside parity: kernel-name validation at every entry point, the
once-per-process numpy fallback warning, the builder/artifact recording of
the resolved kernel, and the ``repro_kernel_dispatch_total`` obs counter.
"""

from __future__ import annotations

import warnings

import numpy as np
import pytest

from graph_factories import bundled_graph, small_er_graph
from repro.core.approximations import DynamicProgrammingEstimator
from repro.core.global_nucleus import global_nucleus_decomposition
from repro.core.local import local_nucleus_decomposition
from repro.core.peel import MonteCarloKappaRepair, peel_kappa_scores
from repro.core.weak_nucleus import weak_nucleus_decomposition
from repro.exceptions import InvalidParameterError
from repro.experiments.pipeline import RunConfig
from repro.graph.generators import clique_graph
from repro.index import build_index
from repro.kernels import (
    KERNELS,
    active_jit,
    force_interpreted,
    numba_available,
    reset_fallback_warning,
    resolve_kernel,
)
from repro.obs import capture as obs_capture
from repro.obs.metrics import REGISTRY as obs_registry
from repro.obs.metrics import snapshot as obs_snapshot


def nuclei_signature(nuclei):
    """Order-preserving comparable view of a global/weak nucleus list."""
    return [
        (nucleus.k, sorted(map(str, nucleus.subgraph.vertices())))
        for nucleus in nuclei
    ]


class TestResolveKernel:
    def test_known_names(self):
        assert KERNELS == ("numpy", "numba")
        assert resolve_kernel("numpy") == "numpy"

    def test_unknown_name_rejected(self):
        with pytest.raises(InvalidParameterError, match="unknown kernel"):
            resolve_kernel("cython")

    @pytest.mark.skipif(numba_available(), reason="fallback only fires without numba")
    def test_fallback_warns_once_per_process(self):
        reset_fallback_warning()
        with pytest.warns(RuntimeWarning, match="falling back to the numpy kernels"):
            assert resolve_kernel("numba") == "numpy"
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_kernel("numba") == "numpy"  # warned already: silent
        reset_fallback_warning()

    @pytest.mark.skipif(numba_available(), reason="fallback only fires without numba")
    def test_fallback_warning_suppressible(self):
        reset_fallback_warning()
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_kernel("numba", warn=False) == "numpy"
        # warn=False must not consume the once-per-process budget.
        with pytest.warns(RuntimeWarning):
            resolve_kernel("numba")
        reset_fallback_warning()

    def test_force_interpreted_keeps_numba_resolved(self):
        with force_interpreted():
            assert resolve_kernel("numba") == "numba"
            assert active_jit() is None

    @pytest.mark.skipif(not numba_available(), reason="needs numba installed")
    def test_numba_resolves_to_itself_when_installed(self):
        assert resolve_kernel("numba") == "numba"
        assert active_jit() is not None


class TestValidation:
    def test_local_dict_backend_rejects_numba(self, monkeypatch):
        graph = small_er_graph(seed=1)
        with force_interpreted():
            with pytest.raises(InvalidParameterError, match="csr"):
                local_nucleus_decomposition(graph, 0.3, kernel="numba")

    def test_local_unknown_kernel_rejected(self):
        graph = small_er_graph(seed=1)
        with pytest.raises(InvalidParameterError, match="unknown kernel"):
            local_nucleus_decomposition(graph, 0.3, backend="csr", kernel="fortran")

    def test_global_dict_backend_rejects_numba(self):
        graph = clique_graph(4, probability=1.0)
        with force_interpreted():
            with pytest.raises(InvalidParameterError, match="csr"):
                global_nucleus_decomposition(
                    graph, k=1, theta=0.3, n_samples=10, kernel="numba"
                )

    def test_weak_unknown_kernel_rejected(self):
        graph = clique_graph(4, probability=1.0)
        with pytest.raises(InvalidParameterError, match="unknown kernel"):
            weak_nucleus_decomposition(
                graph, k=1, theta=0.3, n_samples=10, backend="csr", kernel="julia"
            )

    def test_peel_downgrades_non_unit_drop_repairs(self):
        # A repair that is neither unit-drop nor Monte-Carlo must silently
        # run the numpy trajectory even when kernel="numba" is requested:
        # its scores depend on the exact repair schedule.
        graph = small_er_graph(seed=3, probabilities=(0.4, 0.9))
        csr = graph.to_csr()
        from repro.core.local import _csr_engine_arrays

        with force_interpreted():
            estimator = DynamicProgrammingEstimator()
            _, numpy_scores = _csr_engine_arrays(csr, 0.3, estimator, kernel="numpy")
            _, numba_scores = _csr_engine_arrays(csr, 0.3, estimator, kernel="numba")
        assert np.array_equal(numpy_scores, numba_scores)


class TestPeelParity:
    """Bit-identical peels across kernels (exact DP via the callback boundary)."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 7])
    @pytest.mark.parametrize("theta", [0.05, 0.3])
    def test_er_graphs_bit_identical(self, seed, theta):
        csr = small_er_graph(14, 0.55, seed=seed, probabilities=(0.3, 0.95)).to_csr()
        with force_interpreted():
            numpy_result = local_nucleus_decomposition(csr, theta, kernel="numpy")
            numba_result = local_nucleus_decomposition(csr, theta, kernel="numba")
        assert numba_result.scores == numpy_result.scores
        assert numba_result.max_score == numpy_result.max_score

    @pytest.mark.parametrize("name", ["krogan", "dblp", "flickr"])
    def test_bundled_graphs_bit_identical(self, name):
        csr = bundled_graph(name).to_csr()
        with force_interpreted():
            numpy_result = local_nucleus_decomposition(csr, 0.3, kernel="numpy")
            numba_result = local_nucleus_decomposition(csr, 0.3, kernel="numba")
        assert numba_result.scores == numpy_result.scores

    def test_monte_carlo_repair_exact_on_certain_graph(self):
        # The MC peel is fully jitted with its own variate stream, so parity
        # is distributional in general — but on all-certain probabilities
        # every resample is deterministic and the scores must match exactly.
        csr = clique_graph(6, probability=1.0).to_csr()
        from repro.core.batch import batched_initial_kappas, build_triangle_extension_index

        index = build_triangle_extension_index(csr)
        kappas = batched_initial_kappas(index, 0.3, DynamicProgrammingEstimator())
        with force_interpreted():
            results = {}
            for kernel in KERNELS:
                repair = MonteCarloKappaRepair(
                    index.triangle_probabilities, 0.3, n_samples=32, seed=11
                )
                results[kernel] = peel_kappa_scores(
                    index, kappas.copy(), repair, kernel=kernel
                )
        assert np.array_equal(results["numba"], results["numpy"])


class TestVerificationParity:
    """Global/weak Monte-Carlo verification: same seed, same nuclei."""

    @pytest.mark.parametrize("algorithm", ["global", "weak"])
    @pytest.mark.parametrize("sampling", ["fixed", "adaptive"])
    def test_bundled_graph_parity(self, algorithm, sampling):
        graph = bundled_graph("krogan")
        run = (
            global_nucleus_decomposition
            if algorithm == "global"
            else weak_nucleus_decomposition
        )
        kwargs = {"sampling": sampling} if sampling == "adaptive" else {}
        with force_interpreted():
            results = {
                kernel: run(
                    graph, k=1, theta=0.3, n_samples=80, seed=5,
                    backend="csr", kernel=kernel, **kwargs,
                )
                for kernel in KERNELS
            }
        assert nuclei_signature(results["numba"]) == nuclei_signature(results["numpy"])

    @pytest.mark.parametrize("seed", [0, 4])
    def test_er_graph_parity(self, seed):
        graph = small_er_graph(10, 0.7, seed=seed, probabilities=(0.5, 1.0))
        with force_interpreted():
            results = {
                kernel: weak_nucleus_decomposition(
                    graph, k=1, theta=0.2, n_samples=60, seed=seed,
                    backend="csr", kernel=kernel,
                )
                for kernel in KERNELS
            }
        assert nuclei_signature(results["numba"]) == nuclei_signature(results["numpy"])


class TestRecording:
    def test_builder_omits_engine_params_at_defaults(self, tmp_path):
        graph = clique_graph(4, probability=0.9)
        index = build_index(graph, mode="local", theta=0.3, backend="csr")
        assert "kernel" not in index.params
        assert "partitions" not in index.params

    def test_builder_records_requested_and_resolved_kernel(self):
        graph = clique_graph(4, probability=0.9)
        with force_interpreted():
            index = build_index(
                graph, mode="local", theta=0.3, backend="csr", kernel="numba"
            )
            expected_resolution = resolve_kernel("numba", warn=False)
        assert index.params["kernel"] == "numba"
        assert index.params["kernel_resolved"] == expected_resolution == "numba"

    def test_run_config_validates_kernel(self):
        with pytest.raises(InvalidParameterError, match="unknown kernel"):
            RunConfig(scale="tiny", kernel="gpu")
        with pytest.raises(InvalidParameterError):
            RunConfig(scale="tiny", backend="dict", kernel="numba")

    def test_run_config_sampling_kwargs_default_empty_of_engine_knobs(self):
        kwargs = RunConfig(scale="tiny", backend="csr").sampling_kwargs()
        assert "kernel" not in kwargs
        assert "partitions" not in kwargs

    def test_run_config_threads_kernel_and_partitions(self):
        config = RunConfig(scale="tiny", backend="csr", kernel="numba", partitions=3)
        kwargs = config.sampling_kwargs()
        assert kwargs["kernel"] == "numba"
        assert kwargs["partitions"] == 3

    def test_dispatch_counter_increments(self):
        csr = clique_graph(4, probability=0.9).to_csr()
        obs_registry.reset()
        try:
            with obs_capture(enable=True):
                local_nucleus_decomposition(csr, 0.3, kernel="numpy")
                payload = obs_snapshot()
        finally:
            obs_registry.reset()
        dispatches = {
            (entry["labels"]["phase"], entry["labels"]["kernel"]): entry["value"]
            for entry in payload["metrics"]
            if entry["name"] == "repro_kernel_dispatch_total"
        }
        assert dispatches.get(("peel", "numpy"), 0) >= 1


@pytest.mark.tier2
class TestParitySweepTier2:
    """Broader cross-kernel sweep: every algorithm on many seeded graphs."""

    @pytest.mark.parametrize("seed", range(8))
    def test_local_parity_sweep(self, seed):
        csr = small_er_graph(16, 0.5, seed=seed, probabilities=(0.2, 1.0)).to_csr()
        for theta in (0.02, 0.2, 0.6):
            with force_interpreted():
                numpy_result = local_nucleus_decomposition(csr, theta, kernel="numpy")
                numba_result = local_nucleus_decomposition(csr, theta, kernel="numba")
            assert numba_result.scores == numpy_result.scores, (seed, theta)

    @pytest.mark.parametrize("name", ["krogan", "dblp", "flickr", "pokec", "biomine"])
    @pytest.mark.parametrize("algorithm", ["global", "weak"])
    def test_verification_parity_sweep(self, name, algorithm):
        graph = bundled_graph(name)
        run = (
            global_nucleus_decomposition
            if algorithm == "global"
            else weak_nucleus_decomposition
        )
        for k in (1, 2):
            with force_interpreted():
                results = {
                    kernel: run(
                        graph, k=k, theta=0.25, n_samples=120, seed=9,
                        backend="csr", kernel=kernel,
                    )
                    for kernel in KERNELS
                }
            assert nuclei_signature(results["numba"]) == nuclei_signature(
                results["numpy"]
            ), (name, algorithm, k)
