"""Unit and property tests for possible-world semantics (Equation 1)."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import InvalidParameterError
from repro.graph.possible_worlds import (
    enumerate_worlds,
    expected_edge_count,
    sample_world,
    sample_worlds,
    world_probability,
)
from repro.graph.probabilistic_graph import ProbabilisticGraph


class TestWorldProbability:
    def test_full_world_probability(self, triangle_graph):
        probability = world_probability(triangle_graph, [(0, 1), (1, 2), (0, 2)])
        assert probability == pytest.approx(0.9 * 0.8 * 0.7)

    def test_empty_world_probability(self, triangle_graph):
        probability = world_probability(triangle_graph, [])
        assert probability == pytest.approx(0.1 * 0.2 * 0.3)

    def test_paper_figure1_world(self, paper_figure1_graph):
        """The paper states the world of Figure 1b (missing (1,7) and (2,4)) has probability 0.01152."""
        present = [
            (u, v)
            for u, v, _ in paper_figure1_graph.edges()
            if {u, v} not in ({1, 7}, {2, 4})
        ]
        probability = world_probability(paper_figure1_graph, present)
        assert probability == pytest.approx(0.01152, rel=1e-6)


class TestEnumeration:
    def test_enumeration_covers_all_worlds(self, triangle_graph):
        worlds = list(enumerate_worlds(triangle_graph))
        assert len(worlds) == 2 ** 3

    def test_enumeration_probabilities_sum_to_one(self, triangle_graph):
        total = sum(p for _, p in enumerate_worlds(triangle_graph))
        assert total == pytest.approx(1.0)

    def test_enumeration_respects_edge_limit(self):
        graph = ProbabilisticGraph(
            [(i, i + 1, 0.5) for i in range(30)]
        )
        with pytest.raises(InvalidParameterError):
            list(enumerate_worlds(graph, max_edges=10))

    def test_worlds_preserve_vertex_set(self, triangle_graph):
        for world, _ in enumerate_worlds(triangle_graph):
            assert set(world.vertices()) == set(triangle_graph.vertices())

    def test_world_edges_are_certain(self, triangle_graph):
        for world, _ in enumerate_worlds(triangle_graph):
            for _, _, p in world.edges():
                assert p == 1.0


class TestSampling:
    def test_certain_edges_always_present(self):
        graph = ProbabilisticGraph([(1, 2, 1.0), (2, 3, 1.0)])
        world = sample_world(graph, seed=3)
        assert world.has_edge(1, 2) and world.has_edge(2, 3)

    def test_sampling_is_reproducible_with_seed(self, paper_figure1_graph):
        first = sample_world(paper_figure1_graph, seed=5)
        second = sample_world(paper_figure1_graph, seed=5)
        assert first == second

    def test_sample_worlds_count_and_validation(self, triangle_graph):
        worlds = sample_worlds(triangle_graph, 7, seed=1)
        assert len(worlds) == 7
        with pytest.raises(InvalidParameterError):
            sample_worlds(triangle_graph, 0)

    def test_sample_frequency_tracks_probability(self):
        graph = ProbabilisticGraph([(1, 2, 0.25)])
        rng = random.Random(11)
        hits = sum(
            1 for _ in range(2000) if sample_world(graph, rng=rng).has_edge(1, 2)
        )
        assert 0.2 < hits / 2000 < 0.3

    def test_expected_edge_count(self, triangle_graph):
        assert expected_edge_count(triangle_graph) == pytest.approx(2.4)


class TestPropertyBased:
    @given(
        probabilities=st.lists(st.floats(0.05, 0.95), min_size=1, max_size=6),
        seed=st.integers(0, 1000),
    )
    @settings(max_examples=40, deadline=None)
    def test_enumeration_total_probability_is_one(self, probabilities, seed):
        graph = ProbabilisticGraph()
        for i, p in enumerate(probabilities):
            graph.add_edge(i, i + 1, p)
        total = sum(p for _, p in enumerate_worlds(graph))
        assert total == pytest.approx(1.0)

    @given(probabilities=st.lists(st.floats(0.05, 0.95), min_size=1, max_size=6))
    @settings(max_examples=40, deadline=None)
    def test_sampled_world_is_subset_of_graph(self, probabilities):
        graph = ProbabilisticGraph()
        for i, p in enumerate(probabilities):
            graph.add_edge(i, i + 1, p)
        world = sample_world(graph, seed=0)
        for u, v, _ in world.edges():
            assert graph.has_edge(u, v)
