"""Shared graph factories for the test-suite.

Plain functions rather than fixtures so parametrized sweeps can call them
with their own seeds.  The per-module copies these replace drifted apart in
their magic numbers; new randomized tests should build graphs through these.

This lives outside ``conftest.py`` because the bare module name ``conftest``
is ambiguous at import time: pytest loads ``benchmarks/conftest.py`` too,
and whichever is imported first claims the name in ``sys.modules``.
"""

from __future__ import annotations

from repro.graph.generators import clique_graph
from repro.graph.probabilistic_graph import ProbabilisticGraph


def small_er_graph(num_vertices=12, edge_fraction=0.5, *, seed=0, probabilities=None):
    """Seeded Erdős–Rényi test graph.

    ``probabilities=(low, high)`` draws edge probabilities uniformly from
    that interval; otherwise the generator's default model applies.
    """
    from repro.graph.generators import erdos_renyi_graph, uniform_probability

    kwargs = {}
    if probabilities is not None:
        kwargs["probability_model"] = uniform_probability(*probabilities)
    return erdos_renyi_graph(num_vertices, edge_fraction, seed=seed, **kwargs)


def bundled_graph(name="krogan", scale="tiny"):
    """One of the bundled dataset analogues (``repro.experiments.datasets``)."""
    from repro.experiments.datasets import load_dataset

    return load_dataset(name, scale=scale)


#: Edge-case topologies accepted by :func:`pathological_graph`.
PATHOLOGICAL_KINDS = (
    "empty",
    "isolated_vertices",
    "single_edge",
    "triangle_free_path",
    "two_triangles_shared_edge",
    "certain_five_clique",
    "near_zero_probabilities",
)


def pathological_graph(kind: str) -> ProbabilisticGraph:
    """Named boundary-condition topologies shared across the suite."""
    graph = ProbabilisticGraph()
    if kind == "empty":
        return graph
    if kind == "isolated_vertices":
        for label in range(4):
            graph.add_vertex(label)
        return graph
    if kind == "single_edge":
        graph.add_edge(0, 1, 0.5)
        return graph
    if kind == "triangle_free_path":
        for u in range(5):
            graph.add_edge(u, u + 1, 0.9)
        return graph
    if kind == "two_triangles_shared_edge":
        for u, v, p in [(0, 1, 0.9), (1, 2, 0.8), (0, 2, 0.7), (1, 3, 0.6), (2, 3, 0.5)]:
            graph.add_edge(u, v, p)
        return graph
    if kind == "certain_five_clique":
        return clique_graph(5, probability=1.0)
    if kind == "near_zero_probabilities":
        for u, v in [(0, 1), (1, 2), (0, 2), (2, 3)]:
            graph.add_edge(u, v, 1e-9)
        return graph
    raise ValueError(f"unknown pathological graph kind {kind!r}")
