"""Tests for the statistical approximations of §5.3 and the hybrid selector."""

from __future__ import annotations


import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.approximations import (
    BinomialEstimator,
    DynamicProgrammingEstimator,
    NormalEstimator,
    PoissonEstimator,
    TranslatedPoissonEstimator,
    le_cam_error_bound,
    poisson_tail_probabilities,
)
from repro.core.hybrid import HybridEstimator, HybridParameters
from repro.core.support_dp import NO_VALID_K
from repro.exceptions import InvalidParameterError

ALL_APPROXIMATIONS = [
    PoissonEstimator(),
    TranslatedPoissonEstimator(),
    NormalEstimator(),
    BinomialEstimator(),
]


class TestPoissonTail:
    def test_tail_starts_at_one(self):
        tails = poisson_tail_probabilities(2.0, 5)
        assert tails[0] == pytest.approx(1.0)

    def test_matches_scipy(self):
        from scipy import stats

        lam = 3.7
        tails = poisson_tail_probabilities(lam, 12)
        for k, tail in enumerate(tails):
            assert tail == pytest.approx(stats.poisson.sf(k - 1, lam), abs=1e-9)

    def test_negative_rate_rejected(self):
        with pytest.raises(InvalidParameterError):
            poisson_tail_probabilities(-1.0, 3)


class TestLeCamBound:
    def test_bound_value(self):
        assert le_cam_error_bound([0.1, 0.2]) == pytest.approx(2 * (0.01 + 0.04))

    def test_small_probabilities_give_small_bound(self):
        assert le_cam_error_bound([0.01] * 10) < 0.01


class TestEstimatorContracts:
    @pytest.mark.parametrize("estimator", ALL_APPROXIMATIONS, ids=lambda e: e.name)
    def test_tail_length_and_range(self, estimator):
        probabilities = [0.2, 0.5, 0.8, 0.3]
        tails = estimator.tail_probabilities(probabilities)
        assert len(tails) == len(probabilities) + 1
        assert all(0.0 <= t <= 1.0 for t in tails)

    @pytest.mark.parametrize("estimator", ALL_APPROXIMATIONS, ids=lambda e: e.name)
    def test_tails_monotone_non_increasing(self, estimator):
        probabilities = [0.3] * 10
        tails = estimator.tail_probabilities(probabilities)
        assert all(a >= b - 1e-9 for a, b in zip(tails, tails[1:]))

    @pytest.mark.parametrize("estimator", ALL_APPROXIMATIONS, ids=lambda e: e.name)
    def test_invalid_probability_rejected(self, estimator):
        with pytest.raises(InvalidParameterError):
            estimator.tail_probabilities([0.5, 1.2])

    @pytest.mark.parametrize("estimator", ALL_APPROXIMATIONS, ids=lambda e: e.name)
    def test_invalid_theta_rejected(self, estimator):
        with pytest.raises(InvalidParameterError):
            estimator.max_k(0.5, [0.5], -0.1)

    @pytest.mark.parametrize("estimator", ALL_APPROXIMATIONS, ids=lambda e: e.name)
    def test_max_k_returns_sentinel_below_threshold(self, estimator):
        assert estimator.max_k(0.01, [0.9, 0.9], 0.5) == NO_VALID_K

    def test_empty_profile_tail(self):
        for estimator in ALL_APPROXIMATIONS:
            assert estimator.tail_probabilities([]) == pytest.approx([1.0])


class TestApproximationAccuracy:
    def test_poisson_close_to_exact_for_small_probabilities(self):
        probabilities = [0.03] * 40
        exact = DynamicProgrammingEstimator().tail_probabilities(probabilities)
        poisson = PoissonEstimator().tail_probabilities(probabilities)
        bound = le_cam_error_bound(probabilities)
        for e, a in zip(exact, poisson):
            assert abs(e - a) <= bound + 1e-9

    def test_translated_poisson_beats_poisson_for_large_probabilities(self):
        probabilities = [0.7] * 30
        exact = DynamicProgrammingEstimator().tail_probabilities(probabilities)
        poisson = PoissonEstimator().tail_probabilities(probabilities)
        translated = TranslatedPoissonEstimator().tail_probabilities(probabilities)
        poisson_error = max(abs(e - a) for e, a in zip(exact, poisson))
        translated_error = max(abs(e - a) for e, a in zip(exact, translated))
        assert translated_error < poisson_error

    def test_clt_accurate_for_many_cliques(self):
        probabilities = [0.5] * 300
        exact = DynamicProgrammingEstimator().tail_probabilities(probabilities)
        normal = NormalEstimator().tail_probabilities(probabilities)
        error = max(abs(e - a) for e, a in zip(exact, normal))
        assert error < 0.05

    def test_binomial_exact_for_identical_probabilities(self):
        probabilities = [0.4] * 25
        exact = DynamicProgrammingEstimator().tail_probabilities(probabilities)
        binomial = BinomialEstimator().tail_probabilities(probabilities)
        for e, a in zip(exact, binomial):
            assert e == pytest.approx(a, abs=1e-9)

    def test_normal_degenerate_variance(self):
        tails = NormalEstimator().tail_probabilities([1.0, 1.0, 1.0])
        assert tails == pytest.approx([1.0, 1.0, 1.0, 1.0])

    def test_binomial_degenerate_profiles(self):
        assert BinomialEstimator().tail_probabilities([1.0, 1.0]) == pytest.approx(
            [1.0, 1.0, 1.0]
        )

    @given(
        probabilities=st.lists(st.floats(0.01, 0.99), min_size=1, max_size=30),
    )
    @settings(max_examples=40, deadline=None)
    def test_approximate_max_k_close_to_exact(self, probabilities):
        """Every approximation's kappa stays within 2 of the exact kappa on random profiles."""
        theta = 0.3
        exact = DynamicProgrammingEstimator().max_k(1.0, probabilities, theta)
        for estimator in ALL_APPROXIMATIONS:
            approx = estimator.max_k(1.0, probabilities, theta)
            if estimator.name == "clt" and len(probabilities) < 20:
                continue  # the CLT is only claimed to work for large c
            assert abs(approx - exact) <= 2


class TestHybridSelector:
    def test_default_parameters_match_paper(self):
        params = HybridParameters()
        assert params.clt_min_cliques == 200
        assert params.poisson_max_cliques == 100
        assert params.poisson_max_probability == 0.25
        assert params.binomial_min_variance_ratio == 0.9

    def test_invalid_parameters_rejected(self):
        with pytest.raises(InvalidParameterError):
            HybridEstimator(HybridParameters(clt_min_cliques=0))
        with pytest.raises(InvalidParameterError):
            HybridEstimator(HybridParameters(poisson_max_probability=0.0))
        with pytest.raises(InvalidParameterError):
            HybridEstimator(HybridParameters(binomial_min_variance_ratio=1.5))

    def test_rule1_clt_for_many_cliques(self):
        hybrid = HybridEstimator()
        assert hybrid.select([0.5] * 250).name == "clt"

    def test_rule2_poisson_for_few_small_probabilities(self):
        hybrid = HybridEstimator()
        assert hybrid.select([0.05] * 20).name == "poisson"

    def test_rule3_translated_poisson_for_large_sum_of_squares(self):
        hybrid = HybridEstimator()
        # probabilities above C with sum of squares > 1
        assert hybrid.select([0.9, 0.9, 0.9]).name == "translated_poisson"

    def test_rule4_binomial_for_similar_probabilities(self):
        hybrid = HybridEstimator()
        # two similar probabilities: sum of squares < 1, variance ratio ~ 1
        assert hybrid.select([0.55, 0.6]).name == "binomial"

    def test_rule5_dp_fallback(self):
        hybrid = HybridEstimator(HybridParameters(binomial_min_variance_ratio=0.999))
        # dissimilar probabilities with sum of squares < 1: falls through to DP
        assert hybrid.select([0.9, 0.05]).name == "dp"

    def test_selection_counts_accumulate_and_reset(self):
        hybrid = HybridEstimator()
        hybrid.max_k(1.0, [0.05] * 20, 0.3)
        hybrid.tail_probabilities([0.9, 0.9, 0.9])
        assert hybrid.selection_counts["poisson"] == 1
        assert hybrid.selection_counts["translated_poisson"] == 1
        hybrid.reset_counts()
        assert not hybrid.selection_counts

    def test_empty_profile_selects_poisson_branch(self):
        hybrid = HybridEstimator()
        assert hybrid.max_k(1.0, [], 0.5) == 0

    @given(probabilities=st.lists(st.floats(0.01, 0.99), min_size=1, max_size=50))
    @settings(max_examples=40, deadline=None)
    def test_hybrid_close_to_exact(self, probabilities):
        theta = 0.2
        exact = DynamicProgrammingEstimator().max_k(1.0, probabilities, theta)
        hybrid = HybridEstimator().max_k(1.0, probabilities, theta)
        assert abs(hybrid - exact) <= 2
